/**
 * @file
 * Simulator-throughput microbenchmark.
 *
 * Measures host instructions-per-second for each machine model in
 * three modes — detailed, functional fast-forward, and SMARTS-style
 * sampled (docs/SAMPLING.md) — which bounds the cost of every other
 * bench in this directory.
 *
 * Default (no arguments): the google-benchmark suite, one BM_* per
 * (machine, mode) pair, the trace-generation floors (per-inst next(),
 * block-view generation, and memo-hit replay), and a fifo-vs-sts
 * mini-sweep pair for the thread-pool scheduler.
 *
 * Measurement mode, selected by either option:
 *   --json=FILE            write BENCH_simspeed.json rows: per machine,
 *                          detailed / fastforward / sampled insts/sec
 *                          and the speedups over detailed, plus the
 *                          workload-generation rows
 *   --check-baseline=FILE  exit 1 when any machine's detailed- or
 *                          fastforward-mode throughput (or the
 *                          workload generator's) drops below 70% of
 *                          the committed baseline
 *                          (bench/simspeed_baseline.json) — the CI
 *                          perf-regression guard
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"
#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "sample/sampler.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "trace/trace_source.hh"
#include "workload/generator.hh"
#include "workload/prefix_cache.hh"

using namespace fgstp;

namespace
{

constexpr std::uint64_t chunk = 5000;

// ---- google-benchmark suite -----------------------------------------------

void
BM_SingleCore(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    sim::SingleCoreMachine m(p.core, p.memory, w);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_CoreFusion(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    fusion::FusedMachine m(p.core, p.memory, w, p.fusionOverheads);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_FgStp(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    part::FgstpMachine m(p.core, p.memory, p.fgstp(), w);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_FgStpBus(benchmark::State &state)
{
    // Detailed mode with the shared-bus arbiter on: bounds the cost
    // of the contended-uncore sweeps (--bus) relative to BM_FgStp.
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    auto cfg = p.fgstp();
    cfg.bus.enabled = true;
    part::FgstpMachine m(p.core, p.memory, cfg, w);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_SingleCoreFastForward(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    sim::SingleCoreMachine m(p.core, p.memory, w);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.fastForward(chunk));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_CoreFusionFastForward(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    fusion::FusedMachine m(p.core, p.memory, w, p.fusionOverheads);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.fastForward(chunk));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_FgStpFastForward(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    part::FgstpMachine m(p.core, p.memory, p.fgstp(), w);
    for (auto _ : state)
        benchmark::DoNotOptimize(m.fastForward(chunk));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    // The legacy one-instruction-at-a-time path (next() copies each
    // DynInst out of the current block); kept as the reference point
    // for the block-view numbers below.
    workload::SyntheticWorkload w(workload::profileByName("gcc"), 1);
    trace::DynInst d;
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < chunk; ++i)
            w.next(d);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

/** Consumes `n` insts through the zero-copy peek/advance interface. */
std::uint64_t
drainBlocks(trace::TraceSource &src, std::uint64_t n)
{
    std::uint64_t sink = 0;
    while (n) {
        const trace::DynInst *run = nullptr;
        const std::size_t avail = src.peek(&run);
        if (!avail)
            break;
        const std::size_t take =
            std::min<std::uint64_t>(avail, n);
        // Touch every instruction: a real consumer reads each one, so
        // an untouched drain would overstate the replay path wildly.
        for (std::size_t i = 0; i < take; ++i)
            sink += run[i].pc;
        src.advance(take);
        n -= take;
    }
    return sink;
}

void
BM_WorkloadGen(benchmark::State &state)
{
    // Pure block-backed generation: prefix memo off, so every
    // instruction is synthesized (never replayed) and consumed via
    // peek/advance with no per-instruction copy.
    workload::PrefixCache::Config off;
    off.enabled = false;
    workload::PrefixCache::instance().configure(off);
    workload::SyntheticWorkload w(workload::profileByName("gcc"), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(drainBlocks(w, chunk));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
    workload::PrefixCache::instance().configure({});
}

void
BM_WorkloadGenReplay(benchmark::State &state)
{
    // Memo-hit replay: a first generator records the shared prefix,
    // then every iteration's fresh generator replays it block-wise.
    workload::PrefixCache::instance().configure({});
    {
        workload::SyntheticWorkload warm(
            workload::profileByName("gcc"), 1);
        drainBlocks(warm, chunk);
    } // dtor publishes the recorded prefix
    for (auto _ : state) {
        workload::SyntheticWorkload w(
            workload::profileByName("gcc"), 1);
        benchmark::DoNotOptimize(drainBlocks(w, chunk));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

/** A small single-core sweep through a ThreadPool, policy-selected. */
void
miniSweep(SchedConfig::Policy policy)
{
    const auto p = sim::smallPreset();
    const auto benches = bench::sweepBenchmarks();
    ThreadPool pool(4, SchedConfig{policy});
    std::vector<std::future<std::uint64_t>> futs;
    for (int rep = 0; rep < 3; ++rep) {
        for (const auto &b : benches) {
            SchedHint hint;
            hint.affinity = std::hash<std::string>{}(b);
            hint.hasAffinity = policy == SchedConfig::Policy::Sts;
            futs.push_back(pool.submit([&p, b] {
                return bench::runSingle(b, p, 2000, 1).cycles;
            }, hint));
        }
    }
    for (auto &f : futs)
        f.get();
}

void
BM_SweepFifo(benchmark::State &state)
{
    for (auto _ : state)
        miniSweep(SchedConfig::Policy::Fifo);
}

void
BM_SweepSts(benchmark::State &state)
{
    for (auto _ : state)
        miniSweep(SchedConfig::Policy::Sts);
}

BENCHMARK(BM_SingleCore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoreFusion)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FgStp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FgStpBus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleCoreFastForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoreFusionFastForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FgStpFastForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGen)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGenReplay)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepSts)->Unit(benchmark::kMillisecond);

// ---- measurement mode ------------------------------------------------------

/** The machines measured, with a factory so each mode runs fresh. */
struct MachineUnderTest
{
    const char *name;
    std::function<std::unique_ptr<sim::Machine>(
        workload::SyntheticWorkload &)> make;
};

std::vector<MachineUnderTest>
machinesUnderTest()
{
    return {
        {"single-core",
         [](workload::SyntheticWorkload &w) -> std::unique_ptr<sim::Machine> {
             const auto p = sim::mediumPreset();
             return std::make_unique<sim::SingleCoreMachine>(
                 p.core, p.memory, w);
         }},
        {"core-fusion",
         [](workload::SyntheticWorkload &w) -> std::unique_ptr<sim::Machine> {
             const auto p = sim::mediumPreset();
             return std::make_unique<fusion::FusedMachine>(
                 p.core, p.memory, w, p.fusionOverheads);
         }},
        {"fg-stp",
         [](workload::SyntheticWorkload &w) -> std::unique_ptr<sim::Machine> {
             const auto p = sim::mediumPreset();
             return std::make_unique<part::FgstpMachine>(
                 p.core, p.memory, p.fgstp(), w);
         }},
        {"fg-stp-bus",
         [](workload::SyntheticWorkload &w) -> std::unique_ptr<sim::Machine> {
             const auto p = sim::mediumPreset();
             auto cfg = p.fgstp();
             cfg.bus.enabled = true;
             return std::make_unique<part::FgstpMachine>(
                 p.core, p.memory, cfg, w);
         }},
    };
}

/** One machine's three throughput measurements, in insts/sec. */
struct SpeedRow
{
    std::string machine;
    double detailed = 0.0;
    double fastforward = 0.0;
    double sampled = 0.0;
};

/** Generation-only throughputs (no machine), in insts/sec. */
struct GenRow
{
    double generate = 0.0; ///< block-backed synthesis, memo off
    double replay = 0.0;   ///< prefix-memo hit replay
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-`reps` throughput of `body`, which advances `n` insts. */
double
throughput(std::uint64_t n, unsigned reps,
           const std::function<void()> &fresh_body)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const double t0 = now();
        fresh_body();
        const double dt = now() - t0;
        if (dt > 0.0)
            best = std::max(best, static_cast<double>(n) / dt);
    }
    return best;
}

std::vector<SpeedRow>
measure()
{
    constexpr std::uint64_t detInsts = 200000;
    constexpr std::uint64_t ffInsts = 2000000;
    constexpr unsigned reps = 3;

    std::vector<SpeedRow> rows;
    for (const auto &mut : machinesUnderTest()) {
        SpeedRow row;
        row.machine = mut.name;

        row.detailed = throughput(detInsts, reps, [&] {
            workload::SyntheticWorkload w(
                workload::profileByName("gcc"), 1);
            auto m = mut.make(w);
            m->run(detInsts);
        });
        row.fastforward = throughput(ffInsts, reps, [&] {
            workload::SyntheticWorkload w(
                workload::profileByName("gcc"), 1);
            auto m = mut.make(w);
            m->fastForward(ffInsts);
        });
        row.sampled = throughput(ffInsts, reps, [&] {
            workload::SyntheticWorkload w(
                workload::profileByName("gcc"), 1);
            auto m = mut.make(w);
            sample::Sampler s(*m, sample::SampleSpec{});
            s.run(ffInsts);
        });

        std::printf("%-12s detailed %9.0f /s   fastforward %9.0f /s "
                    "(%.1fx)   sampled %9.0f /s (%.1fx)\n",
                    row.machine.c_str(), row.detailed, row.fastforward,
                    row.fastforward / row.detailed, row.sampled,
                    row.sampled / row.detailed);
        rows.push_back(std::move(row));
    }
    return rows;
}

GenRow
measureGen()
{
    // Matches the memo's default maxPrefixInsts, so the replay leg is
    // a pure memo hit with no generated tail.
    constexpr std::uint64_t genInsts = 2000000;
    constexpr unsigned reps = 3;

    // Keeps drainBlocks' per-instruction reads observable — without
    // this the compiler deletes the touch loop and the replay leg
    // measures only the ~500 block-handoff calls.
    static volatile std::uint64_t sink;

    GenRow g;
    workload::PrefixCache::Config off;
    off.enabled = false;
    workload::PrefixCache::instance().configure(off);
    g.generate = throughput(genInsts, reps, [&] {
        workload::SyntheticWorkload w(
            workload::profileByName("gcc"), 1);
        sink = drainBlocks(w, genInsts);
    });

    workload::PrefixCache::instance().configure({});
    {
        workload::SyntheticWorkload warm(
            workload::profileByName("gcc"), 1);
        sink = drainBlocks(warm, genInsts);
    }
    g.replay = throughput(genInsts, reps, [&] {
        workload::SyntheticWorkload w(
            workload::profileByName("gcc"), 1);
        sink = drainBlocks(w, genInsts);
    });

    std::printf("%-12s generate %9.0f /s   replay      %9.0f /s "
                "(%.1fx)\n",
                "workload-gen", g.generate, g.replay,
                g.replay / g.generate);
    return g;
}

void
writeJson(const std::string &path, const std::vector<SpeedRow> &rows,
          const GenRow &gen)
{
    std::ofstream os(path);
    os << "{\n";
    os << "  \"schemaVersion\": 2,\n";
    os << "  \"experiment\": \"simspeed\",\n";
    os << "  \"title\": \"Host simulation throughput (insts/sec)\",\n";
    os << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    {\"machine\": \"%s\", "
                      "\"detailed\": %.0f, "
                      "\"fastforward\": %.0f, "
                      "\"sampled\": %.0f, "
                      "\"ffSpeedup\": %.2f, "
                      "\"sampledSpeedup\": %.2f}%s\n",
                      r.machine.c_str(), r.detailed, r.fastforward,
                      r.sampled, r.fastforward / r.detailed,
                      r.sampled / r.detailed,
                      i + 1 < rows.size() ? "," : "");
        os << buf;
    }
    os << "  ],\n";
    char gbuf[256];
    std::snprintf(gbuf, sizeof(gbuf),
                  "  \"workloadGen\": {\"generate\": %.0f, "
                  "\"replay\": %.0f, \"replaySpeedup\": %.2f}\n",
                  gen.generate, gen.replay, gen.replay / gen.generate);
    os << gbuf;
    os << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Pulls `"key": <number>` out of `section`'s object in a flat JSON
 * document (both detailedInstsPerSec and fastforwardInstsPerSec list
 * the same machine names, so the lookup must be section-scoped). Good
 * enough for the committed baseline file, which this repo controls.
 */
bool
extractNumber(const std::string &doc, const std::string &section,
              const std::string &key, double &out)
{
    std::size_t pos = doc.find("\"" + section + "\"");
    if (pos == std::string::npos)
        return false;
    const std::size_t end = doc.find('}', pos);
    const std::string needle = "\"" + key + "\"";
    pos = doc.find(needle, pos);
    if (pos == std::string::npos || pos > end)
        return false;
    pos = doc.find(':', pos + needle.size());
    if (pos == std::string::npos)
        return false;
    out = std::strtod(doc.c_str() + pos + 1, nullptr);
    return true;
}

int
checkBaseline(const std::string &path, const std::vector<SpeedRow> &rows,
              const GenRow &gen)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_simspeed: cannot read baseline %s\n",
                     path.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();

    // The guard fires only on large regressions: CI machines vary, so
    // the committed baseline is deliberately conservative and the
    // threshold sits at 70% of it.
    constexpr double threshold = 0.7;
    int failures = 0;
    const auto check = [&](const std::string &section,
                           const std::string &name, const char *mode,
                           double measured) {
        double base = 0.0;
        if (!extractNumber(doc, section, name, base)) {
            std::fprintf(stderr,
                         "bench_simspeed: baseline %s has no %s entry "
                         "for %s\n", path.c_str(), section.c_str(),
                         name.c_str());
            ++failures;
            return;
        }
        const double floor = base * threshold;
        if (measured < floor) {
            std::fprintf(stderr,
                         "bench_simspeed: PERF REGRESSION: %s %s "
                         "throughput %.0f insts/s is below %.0f "
                         "(70%% of baseline %.0f)\n",
                         name.c_str(), mode, measured, floor, base);
            ++failures;
        } else {
            std::printf("%-12s %-11s %9.0f /s  >= floor %9.0f  ok\n",
                        name.c_str(), mode, measured, floor);
        }
    };
    for (const auto &r : rows) {
        check("detailedInstsPerSec", r.machine, "detailed", r.detailed);
        check("fastforwardInstsPerSec", r.machine, "fastforward",
              r.fastforward);
    }
    check("workloadGenInstsPerSec", "workload-gen", "generate",
          gen.generate);
    check("workloadGenInstsPerSec", "workload-gen-replay", "replay",
          gen.replay);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath, baselinePath;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else if (std::strncmp(argv[i], "--check-baseline=", 17) == 0)
            baselinePath = argv[i] + 17;
    }

    if (!jsonPath.empty() || !baselinePath.empty()) {
        const auto rows = measure();
        const auto gen = measureGen();
        if (!jsonPath.empty())
            writeJson(jsonPath, rows, gen);
        if (!baselinePath.empty())
            return checkBaseline(baselinePath, rows, gen);
        return 0;
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
