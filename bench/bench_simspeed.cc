/**
 * @file
 * Simulator-throughput microbenchmark (google-benchmark).
 *
 * Measures host kilo-instructions-per-second for each machine model,
 * which bounds the cost of every other bench in this directory.
 */

#include <benchmark/benchmark.h>

#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "workload/generator.hh"

using namespace fgstp;

namespace
{

constexpr std::uint64_t chunk = 5000;

void
BM_SingleCore(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    sim::SingleCoreMachine m(p.core, p.memory, w);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_CoreFusion(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    fusion::FusedMachine m(p.core, p.memory, w, p.fusionOverheads);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_FgStp(benchmark::State &state)
{
    const auto p = sim::mediumPreset();
    workload::SyntheticWorkload w(workload::profileByName("bzip2"), 1);
    part::FgstpMachine m(p.core, p.memory, p.fgstp(), w);
    std::uint64_t target = 0;
    for (auto _ : state) {
        target += chunk;
        benchmark::DoNotOptimize(m.run(target));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    workload::SyntheticWorkload w(workload::profileByName("gcc"), 1);
    trace::DynInst d;
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < chunk; ++i)
            w.next(d);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}

BENCHMARK(BM_SingleCore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoreFusion)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FgStp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
