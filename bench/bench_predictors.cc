/**
 * @file
 * Substrate characterization: direction-predictor comparison.
 *
 * Thin wrapper: runs the "predictors" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("predictors", argc, argv);
}
