/**
 * @file
 * Substrate characterization: direction-predictor comparison.
 *
 * Conditional-branch misprediction rate (%) per predictor kind over
 * the SPEC2006-like workloads, at the medium front-end budget. Shows
 * the predictor substrate behaves like its published counterparts
 * (bimodal < gshare < tournament/perceptron on correlated codes) and
 * justifies the tournament default.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "branch/direction_predictor.hh"
#include "workload/generator.hh"

using namespace fgstp;
using bench::Table;

namespace
{

double
missRate(const char *kind, const std::string &bench_name)
{
    auto p = branch::makeDirectionPredictor(kind, 16384, 12);
    workload::SyntheticWorkload w(
        workload::profileByName(bench_name), bench::evalSeed);

    trace::DynInst d;
    std::uint64_t lookups = 0, wrong = 0;
    for (int i = 0; i < 60000; ++i) {
        w.next(d);
        if (!d.isCondBranch())
            continue;
        ++lookups;
        wrong += p->lookup(d.pc) != d.taken;
        p->update(d.pc, d.taken);
    }
    return lookups ? 100.0 * wrong / lookups : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Predictor comparison: conditional misprediction "
                  "rate (%)");

    Table t({"benchmark", "bimodal", "gshare", "tournament",
             "perceptron"});

    for (const auto &name : bench::allBenchmarks()) {
        t.addRow({name, Table::fmt(missRate("bimodal", name), 2),
                  Table::fmt(missRate("gshare", name), 2),
                  Table::fmt(missRate("tournament", name), 2),
                  Table::fmt(missRate("perceptron", name), 2)});
    }

    t.print(csv);
    return 0;
}
