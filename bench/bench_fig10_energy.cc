/**
 * @file
 * Fig. 10: energy per instruction and energy-delay.
 *
 * The paper's motivation is that power forced the shift to CMPs; this
 * bench checks that Fg-STP's speedup does not come at big-core energy.
 * Per benchmark: EPI (nJ/instruction) for the four machines, plus
 * geomean EPI and energy-delay product — expected shape: the big core
 * pays the worst EPI (upsized structures), Fg-STP pays two-small-core
 * energy plus a small coupling tax, and wins on energy-delay.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "power/energy_model.hh"
#include "workload/generator.hh"

using namespace fgstp;
using bench::Table;

namespace
{

struct EnergyPoint
{
    double epi = 0.0;
    double edp = 0.0;
};

template <typename Machine>
EnergyPoint
measure(Machine &m, const sim::RunResult &r, double width_factor,
        bool fgstp_part, bool fusion_steer,
        std::uint64_t link_transfers = 0)
{
    std::vector<const core::CoreStats *> cs;
    for (unsigned i = 0; i < m.numCores(); ++i)
        cs.push_back(&m.coreStats(i));
    auto act = power::gatherActivity(cs.data(), m.numCores(),
                                     m.memory().stats(), r.cycles,
                                     r.instructions, width_factor);
    act.fgstpPartitioning = fgstp_part;
    act.fusionSteering = fusion_steer;
    act.linkTransfers = link_transfers;
    const auto e = power::estimateEnergy(act);
    return {e.epi, e.edp};
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 10: energy per instruction (nJ) and "
                  "energy-delay, medium design point");

    const auto p = sim::mediumPreset();
    const auto big = sim::bigCoreConfig();

    Table t({"benchmark", "1core", "bigCore", "fusion", "fgStp",
             "fgStpEDP/1coreEDP"});

    std::vector<double> epi1, epib, epif, epis, edr;
    for (const auto &name : bench::allBenchmarks()) {
        const auto prof = workload::profileByName(name);

        workload::SyntheticWorkload w1(prof, bench::evalSeed);
        sim::SingleCoreMachine m1(p.core, p.memory, w1);
        const auto r1 = m1.run(bench::defaultInsts);
        const auto e1 = measure(m1, r1, 1.0, false, false);

        workload::SyntheticWorkload w2(prof, bench::evalSeed);
        sim::SingleCoreMachine m2(big, p.memory, w2);
        const auto r2 = m2.run(bench::defaultInsts);
        const auto e2 = measure(m2, r2, 2.0, false, false);

        workload::SyntheticWorkload w3(prof, bench::evalSeed);
        fusion::FusedMachine m3(p.core, p.memory, w3,
                                p.fusionOverheads);
        const auto r3 = m3.run(bench::defaultInsts);
        const auto e3 = measure(m3, r3, 2.0, false, true);

        workload::SyntheticWorkload w4(prof, bench::evalSeed);
        part::FgstpMachine m4(p.core, p.memory, p.fgstp(), w4);
        const auto r4 = m4.run(bench::defaultInsts);
        const auto e4 = measure(m4, r4, 1.0, true, false,
                                m4.fgstpStats().valueTransfers);

        epi1.push_back(e1.epi);
        epib.push_back(e2.epi);
        epif.push_back(e3.epi);
        epis.push_back(e4.epi);
        edr.push_back(e4.edp / e1.edp);

        t.addRow({name, Table::fmt(e1.epi, 2), Table::fmt(e2.epi, 2),
                  Table::fmt(e3.epi, 2), Table::fmt(e4.epi, 2),
                  Table::fmt(e4.edp / e1.edp, 3)});
    }

    t.addRow({"GEOMEAN", Table::fmt(bench::geomeanRatio(epi1), 2),
              Table::fmt(bench::geomeanRatio(epib), 2),
              Table::fmt(bench::geomeanRatio(epif), 2),
              Table::fmt(bench::geomeanRatio(epis), 2),
              Table::fmt(bench::geomeanRatio(edr), 3)});
    t.print(csv);
    return 0;
}
