/**
 * @file
 * fgstp_bench — the unified experiment runner.
 *
 *   fgstp_bench [--experiment=fig1,fig2,...|all] [--jobs=N]
 *               [--sched=fifo|sts] [--prefix-cache=0|MiB]
 *               [--format=text|csv|json] [--insts=N] [--seed=N]
 *               [--out=DIR] [--cpi-stack] [--list]
 *               [--check] [--inject=SPEC]
 *               [--sample[=ff=N,warmup=N,measure=N]]
 *               [--bus[=SPEC]] [--steer=SPEC]
 *               [--coherence=flat|mesi]
 *               [--cache=DIR] [--cache-stats] [--cache-gc]
 *               [--shard=i/N] [--merge FILE...]
 *               [--serve[=stdio|unix:PATH]]
 *
 * Runs any subset of the paper's table/figure experiments over one
 * shared thread pool. Every (experiment, benchmark, config) cell is
 * an independent job with a seed derived from its identity, so the
 * numbers are bit-identical at any --jobs value. All cells of all
 * selected experiments are scheduled before any are collected, which
 * keeps the pool saturated across experiment boundaries.
 *
 * --sched picks the pool's scheduling policy (default sts: benchmark
 * affinity + high-priority lane + work stealing; fifo is the plain
 * shared queue) — placement only, never results. --prefix-cache
 * bounds the workload prefix memo's byte budget in MiB (0 disables
 * it); both layers' counters land on the report's wallTimeMs meta
 * line. See docs/SAMPLING.md ("Raw speed").
 *
 * text/csv formats print to stdout; json writes one
 * BENCH_<experiment>.json per experiment into --out (schema:
 * docs/STATS.md) and prints a one-line summary per file. A missing
 * --out directory is created. --cpi-stack additionally attaches a
 * CPI-stack monitor to every cell's machine and emits the per-cell
 * stall breakdown (BENCH_cpistack.json under json, a table
 * otherwise).
 *
 * Hardening: --check cross-checks every cell's commit stream against
 * a golden model; --inject=SPEC (grammar: docs/ROBUSTNESS.md) runs
 * every Fg-STP cell under a deterministic fault plan. A cell that
 * throws — divergence, watchdog deadlock, unrecoverable fault — is
 * recorded as "status": "failed" in the JSON report instead of
 * killing the sweep, and the exit code becomes non-zero.
 *
 * --sample switches every cell to SMARTS-style sampled simulation
 * (docs/SAMPLING.md): JSON reports carry schemaVersion 3 with a
 * meta.sampling block, and the per-cell sampling summaries are emitted
 * as BENCH_sampling.json (json) or an extra table (text/csv).
 * Incompatible with --cpi-stack, whose report wants full-run stacks
 * (flag-conflict rules: src/common/cli_conflicts.hh).
 *
 * --bus[=SPEC] runs every cell with the shared uncore bus arbiter
 * (docs/UNCORE.md): operand transfers and coherence traffic contend
 * for one bandwidth-limited bus, JSON reports gain a meta.bus block,
 * and --cpi-stack cells additionally carry the busContention
 * sub-bucket.
 *
 * --coherence=mesi builds every cell's memory hierarchy with the
 * directory-based MESI protocol instead of the default flat
 * write-invalidate approximation (docs/UNCORE.md): targeted
 * invalidations, E/M ownership tracking, and — with --bus — upgrade
 * and writeback traffic classes on the shared bus. JSON reports gain
 * a meta.coherence field and --cpi-stack cells carry the coherence
 * sub-bucket. --coherence=flat is byte-identical to the default.
 *
 * --steer=SPEC reconfigures every Fg-STP cell's partitioner
 * cost-model weights (docs/STEERING.md): fixed key=value weights, the
 * offline-tuned per-benchmark table (`tuned`), and/or per-interval
 * online refitting (`adaptive`, which requires --sample). JSON
 * reports gain a meta.steering block.
 *
 * Sweep service (docs/SERVICE.md): --cache=DIR memoizes every cell in
 * a persistent content-addressed result cache (--cache-stats reports
 * the counters, --cache-gc reclaims stale-code-version entries and
 * exits); --shard=i/N simulates a deterministic 1/N slice of the
 * sweep and writes BENCH_<experiment>.shard<i>of<N>.json partial
 * documents that `--merge FILE...` reassembles into the byte-identical
 * unsharded BENCH_<experiment>.json; --serve turns the process into a
 * long-lived server answering newline-delimited JSON cell requests
 * over stdio or a unix socket. All flags are documented in
 * docs/CLI.md.
 */

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "bench/sweep_service.hh"
#include "serve/progress.hh"
#include "common/cli_conflicts.hh"
#include "common/error.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "fgstp/steering.hh"
#include "harden/fault.hh"
#include "obs/events.hh"
#include "sample/sampler.hh"
#include "workload/prefix_cache.hh"

using namespace fgstp;

namespace
{

struct Options
{
    std::vector<std::string> experiments; // empty means all
    unsigned jobs = 0;                    // 0 means hardware default
    SchedConfig sched{SchedConfig::Policy::Sts}; // --sched policy
    std::string prefixCacheSpec; // --prefix-cache; empty = defaults
    std::string format = "text";
    std::string outDir = ".";
    bench::RunParams params;
    bool cpiStack = false;
    bool list = false;
    bool check = false;     // golden-model cross-check per cell
    std::string injectSpec; // fault plan for Fg-STP cells
    bool sample = false;    // SMARTS-style sampled cells
    std::string sampleSpec; // empty keeps the SampleSpec defaults
    bool bus = false;       // shared uncore bus arbiter per cell
    std::string busSpec;    // empty keeps the BusConfig defaults
    bool steer = false;     // per-cell steering weights
    std::string steerSpec;  // --steer spec (grammar: docs/STEERING.md)
    std::string coherenceSpec; // --coherence value; empty = flat

    // Sweep service (docs/SERVICE.md)
    std::string cacheDir;  // --cache directory; empty = off
    bool cacheStats = false; // report cache counters after the run
    bool cacheGc = false;  // reclaim stale-version entries and exit
    std::string shardSpec; // --shard=i/N; empty = unsharded
    bool merge = false;    // reassemble shard files, no simulation
    std::vector<std::string> mergeFiles; // positional args of --merge
    bool serve = false;    // long-lived request server
    std::string serveSpec; // --serve transport ("" = stdio)
};

bool
matchValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

Options
parse(int argc, char **argv)
{
    Options o;
    std::string v;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (matchValue(a, "--experiment", v)) {
            if (v != "all")
                o.experiments = splitCsv(v);
        } else if (matchValue(a, "--jobs", v)) {
            o.jobs = static_cast<unsigned>(std::strtoul(
                v.c_str(), nullptr, 10));
        } else if (matchValue(a, "--sched", v)) {
            if (!SchedConfig::parsePolicy(v, o.sched.policy))
                fatal("unknown scheduler '", v, "' (fifo | sts)");
        } else if (matchValue(a, "--prefix-cache", v)) {
            o.prefixCacheSpec = v;
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos)
                fatal("--prefix-cache needs a MiB budget "
                      "(--prefix-cache=0 disables the memo)");
        } else if (matchValue(a, "--format", v)) {
            o.format = v;
        } else if (matchValue(a, "--out", v)) {
            o.outDir = v;
        } else if (matchValue(a, "--insts", v)) {
            o.params.insts = std::strtoull(v.c_str(), nullptr, 10);
        } else if (matchValue(a, "--seed", v)) {
            o.params.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (std::strcmp(a, "--cpi-stack") == 0) {
            o.cpiStack = true;
        } else if (std::strcmp(a, "--check") == 0) {
            o.check = true;
        } else if (matchValue(a, "--inject", v)) {
            o.injectSpec = v;
        } else if (std::strcmp(a, "--sample") == 0) {
            o.sample = true;
        } else if (matchValue(a, "--sample", v)) {
            o.sample = true;
            o.sampleSpec = v;
        } else if (std::strcmp(a, "--bus") == 0) {
            o.bus = true;
        } else if (matchValue(a, "--bus", v)) {
            o.bus = true;
            o.busSpec = v;
        } else if (std::strcmp(a, "--steer") == 0) {
            fatal("--steer needs a spec, e.g. --steer=tuned or "
                  "--steer=comm=12,balance=0.6 (see docs/STEERING.md)");
        } else if (matchValue(a, "--steer", v)) {
            o.steer = true;
            o.steerSpec = v;
        } else if (matchValue(a, "--coherence", v)) {
            o.coherenceSpec = v;
            if (v != "flat" && v != "mesi")
                fatal("unknown coherence model '", v,
                      "' (flat | mesi)");
        } else if (matchValue(a, "--cache", v)) {
            o.cacheDir = v;
            if (o.cacheDir.empty())
                fatal("--cache needs a directory (--cache=DIR)");
        } else if (std::strcmp(a, "--cache-stats") == 0) {
            o.cacheStats = true;
        } else if (std::strcmp(a, "--cache-gc") == 0) {
            o.cacheGc = true;
        } else if (matchValue(a, "--shard", v)) {
            o.shardSpec = v;
        } else if (std::strcmp(a, "--merge") == 0) {
            o.merge = true;
        } else if (std::strcmp(a, "--serve") == 0) {
            o.serve = true;
        } else if (matchValue(a, "--serve", v)) {
            o.serve = true;
            o.serveSpec = v;
        } else if (std::strcmp(a, "--list") == 0) {
            o.list = true;
        } else if (a[0] != '-' && o.merge) {
            o.mergeFiles.push_back(a);
        } else {
            fatal("unknown option '", a, "' (see docs/CLI.md)");
        }
    }
    if (o.format != "text" && o.format != "csv" && o.format != "json")
        fatal("unknown format '", o.format, "' (text | csv | json)");
    return o;
}

/** Writes the per-cell CPI stacks as BENCH_cpistack.json. */
void
renderCpiJson(std::ostream &os, const std::vector<bench::CellCpi> &cells,
              const bench::RunParams &params)
{
    os << "{\n";
    os << "  \"schemaVersion\": 1,\n";
    os << "  \"experiment\": \"cpistack\",\n";
    os << "  \"title\": \"Per-cell CPI-stack stall attribution\",\n";
    os << "  \"meta\": {\n";
    os << "    \"insts\": " << json::number(params.insts) << ",\n";
    os << "    \"evalSeed\": " << json::number(params.seed) << ",\n";
    os << "    \"cellCount\": "
       << json::number(static_cast<std::uint64_t>(cells.size())) << "\n";
    os << "  },\n";
    os << "  \"causes\": [";
    for (std::size_t i = 0; i < obs::numCpiCauses; ++i) {
        os << (i ? ", " : "")
           << json::quote(obs::cpiCauseKey(
                  static_cast<obs::CpiCause>(i)));
    }
    os << "],\n";
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        os << "    {\"machine\": " << json::quote(c.machine)
           << ", \"bench\": " << json::quote(c.bench)
           << ", \"seed\": " << json::number(c.seed)
           << ", \"cycles\": " << json::number(c.cycles)
           << ", \"cores\": [";
        for (std::size_t k = 0; k < c.perCore.size(); ++k) {
            os << (k ? ", " : "") << "[";
            for (std::size_t j = 0; j < obs::numCpiCauses; ++j) {
                os << (j ? ", " : "")
                   << json::number(c.perCore[k].cycles[j]);
            }
            os << "]";
        }
        os << "]";
        // The crossCoreOperandWait sub-bucket exists only when the
        // shared bus contends; bus-off output stays byte-identical.
        if (params.bus.enabled) {
            os << ", \"busContention\": [";
            for (std::size_t k = 0; k < c.perCore.size(); ++k) {
                os << (k ? ", " : "")
                   << json::number(c.perCore[k].busContention);
            }
            os << "]";
        }
        // Likewise the memory sub-bucket for coherence waits, which
        // only the MESI directory populates; flat output (the
        // default) stays byte-identical.
        if (params.coherence == mem::CoherenceKind::Mesi) {
            os << ", \"coherence\": [";
            for (std::size_t k = 0; k < c.perCore.size(); ++k) {
                os << (k ? ", " : "")
                   << json::number(c.perCore[k].coherence);
            }
            os << "]";
        }
        os << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

/** Prints the per-cell CPI stacks as a table (text/csv formats). */
void
renderCpiText(std::ostream &os, const std::vector<bench::CellCpi> &cells,
              bool csv)
{
    std::vector<std::string> headers{"machine", "bench", "cycles"};
    for (std::size_t i = 0; i < obs::numCpiCauses; ++i)
        headers.push_back(
            obs::cpiCauseKey(static_cast<obs::CpiCause>(i)));
    bench::Table t(std::move(headers));
    for (const auto &c : cells) {
        // Sum the cores: the stack fractions describe the machine.
        obs::CpiStack sum;
        for (const auto &st : c.perCore) {
            for (std::size_t j = 0; j < obs::numCpiCauses; ++j)
                sum.cycles[j] += st.cycles[j];
        }
        std::vector<std::string> row{c.machine, c.bench,
                                     std::to_string(c.cycles)};
        for (std::size_t j = 0; j < obs::numCpiCauses; ++j)
            row.push_back(bench::Table::fmt(
                sum.fraction(static_cast<obs::CpiCause>(j)), 3));
        t.addRow(std::move(row));
    }
    os << "\n";
    t.render(os, csv);
}

/** Writes the per-cell sampling summaries as BENCH_sampling.json. */
void
renderSamplingJson(std::ostream &os,
                   const std::vector<bench::CellSampling> &cells,
                   const bench::RunParams &params)
{
    os << "{\n";
    os << "  \"schemaVersion\": 1,\n";
    os << "  \"experiment\": \"sampling\",\n";
    os << "  \"title\": \"Per-cell sampled-simulation summary\",\n";
    os << "  \"meta\": {\n";
    os << "    \"insts\": " << json::number(params.insts) << ",\n";
    os << "    \"evalSeed\": " << json::number(params.seed) << ",\n";
    os << "    \"sampling\": {\n";
    os << "      \"mode\": \"smarts\",\n";
    os << "      \"ffInsts\": " << json::number(params.sample.ffInsts)
       << ",\n";
    os << "      \"warmupInsts\": "
       << json::number(params.sample.warmupInsts) << ",\n";
    os << "      \"measureInsts\": "
       << json::number(params.sample.measureInsts) << "\n";
    os << "    },\n";
    os << "    \"cellCount\": "
       << json::number(static_cast<std::uint64_t>(cells.size())) << "\n";
    os << "  },\n";
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        os << "    {\"machine\": " << json::quote(c.machine)
           << ", \"bench\": " << json::quote(c.bench)
           << ", \"seed\": " << json::number(c.seed)
           << ", \"intervals\": " << json::number(c.intervals)
           << ", \"measuredInstructions\": "
           << json::number(c.measuredInstructions)
           << ", \"measuredCycles\": " << json::number(c.measuredCycles)
           << ", \"fastForwarded\": " << json::number(c.fastForwarded)
           << ", \"ipc\": " << json::number(c.ipc)
           << ", \"meanIpc\": " << json::number(c.meanIpc)
           << ", \"ciHalfWidth\": " << json::number(c.ciHalfWidth)
           << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

/** Prints the per-cell sampling summaries as a table (text/csv). */
void
renderSamplingText(std::ostream &os,
                   const std::vector<bench::CellSampling> &cells,
                   bool csv)
{
    bench::Table t({"machine", "bench", "intervals", "measuredInsts",
                    "fastForwarded", "ipc", "meanIpc", "ci95"});
    for (const auto &c : cells) {
        t.addRow({c.machine, c.bench, std::to_string(c.intervals),
                  std::to_string(c.measuredInstructions),
                  std::to_string(c.fastForwarded),
                  bench::Table::fmt(c.ipc, 4),
                  bench::Table::fmt(c.meanIpc, 4),
                  bench::Table::fmt(c.ciHalfWidth, 4)});
    }
    os << "\n";
    t.render(os, csv);
}

/** Reports every failed cell of a collected run on stderr. */
void
reportFailedCells(const bench::ExperimentRun &run)
{
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        if (run.results[i].ok)
            continue;
        const auto &c = run.cells[i];
        std::fprintf(stderr,
                     "fgstp_bench: %s: cell %s/%s (seed %llu) "
                     "failed: %s\n",
                     run.experiment->name.c_str(), c.bench.c_str(),
                     c.machine.c_str(),
                     static_cast<unsigned long long>(c.seed),
                     run.results[i].error.c_str());
    }
}

/** Prints the cache counters as one greppable stderr line. */
void
reportCacheStats(const serve::ResultCache &cache)
{
    const auto s = cache.stats();
    std::fprintf(stderr,
                 "fgstp_bench: cache: hits=%llu misses=%llu "
                 "stores=%llu corrupt=%llu evicted=%llu\n",
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses),
                 static_cast<unsigned long long>(s.stores),
                 static_cast<unsigned long long>(s.corrupt),
                 static_cast<unsigned long long>(s.evicted));
}

/** --merge: reassemble shard documents; no simulation at all. */
int
runMerge(const Options &o)
{
    if (o.mergeFiles.empty()) {
        fatal("--merge needs at least one shard file "
              "(fgstp_bench --merge a.json b.json ...)");
    }
    ensureDir(o.outDir);
    const auto merged = bench::mergeShards(o.mergeFiles, o.outDir);
    int failures = 0;
    for (const auto &m : merged) {
        std::printf("%-11s %4zu cells merged%s    -> %s\n",
                    m.experiment.c_str(), m.cellCount,
                    m.failedCells ? " [FAILED CELLS]" : "",
                    m.path.c_str());
        failures += m.failedCells != 0;
    }
    return failures ? 1 : 0;
}

int
runBench(const Options &o)
{
    part::SteeringSpec steer_spec;
    part::SteeringOverrides steer_ovr;
    if (o.steer)
        steer_spec = part::parseSteeringSpec(o.steerSpec, steer_ovr);

    {
        std::set<std::string> active;
        if (o.sample)
            active.insert("--sample");
        if (o.cpiStack)
            active.insert("--cpi-stack");
        if (o.steer)
            active.insert("--steer");
        if (o.steer && steer_spec.adaptive)
            active.insert("--steer=adaptive");
        if (!o.cacheDir.empty())
            active.insert("--cache");
        if (o.cacheStats)
            active.insert("--cache-stats");
        if (o.cacheGc)
            active.insert("--cache-gc");
        if (!o.shardSpec.empty())
            active.insert("--shard");
        if (o.merge)
            active.insert("--merge");
        if (o.serve)
            active.insert("--serve");
        if (o.format == "json")
            active.insert("--format=json");
        if (!o.injectSpec.empty())
            active.insert("--inject");
        if (std::find(o.experiments.begin(), o.experiments.end(),
                      "inject_sweep") != o.experiments.end())
            active.insert("--experiment=inject_sweep");
        cli::checkFlagConflicts("fgstp_bench",
                                cli::benchConflictRules(), active);
        cli::checkFlagRequirements("fgstp_bench",
                                   cli::benchRequirementRules(), active);
    }

    if (o.merge)
        return runMerge(o);

    // Configure the workload prefix memo before any generator exists.
    // Purely a speed knob: the replayed stream is bit-identical to a
    // freshly generated one, so it never joins the cache fingerprint.
    if (!o.prefixCacheSpec.empty()) {
        workload::PrefixCache::Config pc;
        const auto mib = std::strtoull(
            o.prefixCacheSpec.c_str(), nullptr, 10);
        pc.enabled = mib != 0;
        if (mib != 0)
            pc.maxBytes = mib * (1ull << 20);
        workload::PrefixCache::instance().configure(pc);
    }

    bench::RunParams params = o.params;
    params.sampleSpecRaw = o.sampleSpec;
    params.busSpecRaw = o.busSpec;
    params.steerSpecRaw = o.steerSpec;
    params.check = o.check;
    params.injectSpecRaw = o.injectSpec;
    params.cpiStack = o.cpiStack;
    if (o.coherenceSpec == "mesi")
        params.coherence = mem::CoherenceKind::Mesi;
    // An explicit --coherence=flat and an unconfigured run take the
    // same path (and share a cache namespace): flat is the default.
    bench::setCellCoherence(params.coherence);
    if (o.bus) {
        params.bus = uncore::parseBusConfig(o.busSpec);
        bench::setCellBus(params.bus, true);
    }
    if (o.sample) {
        params.sampled = true;
        if (!o.sampleSpec.empty())
            params.sample = sample::parseSampleSpec(o.sampleSpec);
        bench::setCellSampling(params.sample, true);
    }
    if (o.steer) {
        params.steer = true;
        params.steerSpec = steer_spec;
        bench::setCellSteering(steer_spec, steer_ovr, true);
        std::fprintf(stderr, "fgstp_bench: steering Fg-STP cells: %s\n",
                     steer_spec.tuned
                         ? "tuned per-benchmark table"
                         : steer_spec.weights.describe().c_str());
    }

    // The cache context hashes the fully-populated params, so this
    // must come after every params field is final.
    std::optional<serve::ResultCache> cache;
    if (!o.cacheDir.empty()) {
        cache.emplace(o.cacheDir, bench::makeCacheContext(params));
        params.cache = &*cache;
        if (o.cacheGc) {
            const std::size_t evicted = cache->gcStaleVersions();
            std::fprintf(stderr,
                         "fgstp_bench: cache: evicted %zu "
                         "stale-version entries from '%s'\n",
                         evicted, cache->directory().c_str());
            if (o.cacheStats)
                reportCacheStats(*cache);
            return 0;
        }
    }

    std::vector<const bench::Experiment *> selected;
    if (o.experiments.empty()) {
        for (const auto &e : bench::allExperiments())
            selected.push_back(&e);
    } else {
        for (const auto &name : o.experiments) {
            const auto *e = bench::findExperiment(name);
            if (!e)
                fatal("unknown experiment '", name,
                      "' (fgstp_bench --list)");
            selected.push_back(e);
        }
    }

    if (o.format == "json")
        ensureDir(o.outDir);
    if (o.cpiStack)
        bench::enableCellObservability(true);

    if (o.check || !o.injectSpec.empty()) {
        harden::FaultPlan plan; // any() == false when no --inject
        if (!o.injectSpec.empty()) {
            plan = harden::parseFaultPlan(o.injectSpec);
            std::fprintf(stderr,
                         "fgstp_bench: injecting faults into Fg-STP "
                         "cells: %s\n", plan.describe().c_str());
        }
        bench::setCellHardening(plan, o.check);
    }

    unsigned jobs = o.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    ThreadPool pool(jobs, o.sched);

    if (o.serve) {
        const auto config = serve::parseServeConfig(o.serveSpec);
        std::fprintf(stderr, "fgstp_bench: serving cell requests on %s "
                             "(shutdown: {\"shutdown\": true})\n",
                     config.transport ==
                             serve::ServeConfig::Transport::Stdio
                         ? "stdio"
                         : config.path.c_str());
        const auto stats = bench::runCellServe(config, params, pool);
        std::fprintf(
            stderr,
            "fgstp_bench: serve: requests=%llu errors=%llu "
            "cacheHits=%llu busyMs=%.1f\n",
            static_cast<unsigned long long>(stats.requests),
            static_cast<unsigned long long>(stats.errors),
            static_cast<unsigned long long>(stats.cacheHits),
            stats.busyMs);
        if (o.cacheStats && cache)
            reportCacheStats(*cache);
        return 0;
    }

    // One progress meter across every selected experiment; stderr,
    // TTY-gated (FGSTP_PROGRESS overrides), erased before real output.
    serve::ProgressMeter progress(
        "fgstp_bench", serve::ProgressMeter::progressEnabled());
    params.progress = &progress;

    if (!o.shardSpec.empty()) {
        const auto shard = serve::parseShardSpec(o.shardSpec);
        std::vector<bench::ShardScheduled> scheduled;
        scheduled.reserve(selected.size());
        for (const auto *e : selected)
            scheduled.push_back(
                bench::scheduleShard(*e, params, shard, pool));

        int failures = 0;
        for (auto &s : scheduled) {
            const auto *e = s.experiment;
            auto run = bench::collectShard(std::move(s));
            for (std::size_t k = 0; k < run.results.size(); ++k) {
                if (run.results[k].ok)
                    continue;
                const auto &c = run.cells[run.owned[k]];
                std::fprintf(stderr,
                             "fgstp_bench: %s: cell %s/%s (seed %llu) "
                             "failed: %s\n",
                             e->name.c_str(), c.bench.c_str(),
                             c.machine.c_str(),
                             static_cast<unsigned long long>(c.seed),
                             run.results[k].error.c_str());
            }
            failures += run.failedCells() != 0;
            const std::string path =
                o.outDir + "/BENCH_" + e->name + ".shard" +
                std::to_string(shard.rank) + "of" +
                std::to_string(shard.count) + ".json";
            AtomicFileWriter out(path);
            bench::renderShardJson(out.stream(), run, params, shard,
                                   pool.size());
            out.commit();
            progress.finish();
            std::printf("%-11s %4zu/%zu cells %9.1f ms%s -> %s\n",
                        e->name.c_str(), run.owned.size(),
                        run.cells.size(), run.wallTimeMs,
                        run.failedCells() ? " [FAILED CELLS]" : "",
                        path.c_str());
        }
        progress.finish();
        if (o.cacheStats && cache)
            reportCacheStats(*cache);
        return failures ? 1 : 0;
    }

    // Schedule everything up front, collect in selection order.
    std::vector<bench::ScheduledExperiment> scheduled;
    scheduled.reserve(selected.size());
    for (const auto *e : selected)
        scheduled.push_back(
            bench::scheduleExperiment(*e, params, pool));

    int failures = 0;
    bool first = true;
    for (auto &s : scheduled) {
        const auto *e = s.experiment;
        auto run = bench::collectExperiment(std::move(s), params);
        progress.finish();
        if (!run.ok()) {
            reportFailedCells(run);
            ++failures;
        }
        if (o.format == "json") {
            const std::string path =
                o.outDir + "/BENCH_" + e->name + ".json";
            AtomicFileWriter out(path);
            bench::renderJson(out.stream(), run, params,
                              pool.size(), &pool);
            out.commit();
            std::printf("%-11s %4zu jobs %9.1f ms%s  -> %s\n",
                        e->name.c_str(), run.cells.size(),
                        run.wallTimeMs,
                        run.ok() ? "" : " [FAILED CELLS]",
                        path.c_str());
        } else {
            if (!first)
                std::cout << "\n";
            bench::renderText(std::cout, run, o.format == "csv");
        }
        first = false;
    }
    progress.finish();

    if (o.cpiStack) {
        const auto cells = bench::takeCellCpiSamples();
        if (o.format == "json") {
            const std::string path = o.outDir + "/BENCH_cpistack.json";
            AtomicFileWriter out(path);
            renderCpiJson(out.stream(), cells, params);
            out.commit();
            std::printf("%-11s %4zu cells              -> %s\n",
                        "cpistack", cells.size(), path.c_str());
        } else {
            renderCpiText(std::cout, cells, o.format == "csv");
        }
    }

    if (o.sample) {
        const auto cells = bench::takeCellSamplingRecords();
        if (o.format == "json") {
            const std::string path = o.outDir + "/BENCH_sampling.json";
            AtomicFileWriter out(path);
            renderSamplingJson(out.stream(), cells, params);
            out.commit();
            std::printf("%-11s %4zu cells              -> %s\n",
                        "sampling", cells.size(), path.c_str());
        } else {
            renderSamplingText(std::cout, cells, o.format == "csv");
        }
    }

    if (o.cacheStats && cache)
        reportCacheStats(*cache);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    if (o.list) {
        for (const auto &e : bench::allExperiments())
            std::printf("%-11s %s\n", e.name.c_str(), e.title.c_str());
        return 0;
    }

    try {
        return runBench(o);
    } catch (const SimError &ex) {
        // Bad --inject spec or a failed report write. Per-cell
        // failures never reach here — they are folded into the
        // "status": "failed" rows and the exit code by runBench.
        std::fflush(stdout);
        std::fprintf(stderr, "fgstp_bench: error: %s\n", ex.what());
        return 1;
    }
}
