/**
 * @file
 * fgstp_bench — the unified experiment runner.
 *
 *   fgstp_bench [--experiment=fig1,fig2,...|all] [--jobs=N]
 *               [--format=text|csv|json] [--out=DIR]
 *               [--insts=N] [--seed=N] [--list]
 *
 * Runs any subset of the paper's table/figure experiments over one
 * shared thread pool. Every (experiment, benchmark, config) cell is
 * an independent job with a seed derived from its identity, so the
 * numbers are bit-identical at any --jobs value. All cells of all
 * selected experiments are scheduled before any are collected, which
 * keeps the pool saturated across experiment boundaries.
 *
 * text/csv formats print to stdout; json writes one
 * BENCH_<experiment>.json per experiment into --out (schema:
 * docs/STATS.md) and prints a one-line summary per file.
 * All flags are documented in docs/CLI.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "common/logging.hh"

using namespace fgstp;

namespace
{

struct Options
{
    std::vector<std::string> experiments; // empty means all
    unsigned jobs = 0;                    // 0 means hardware default
    std::string format = "text";
    std::string outDir = ".";
    bench::RunParams params;
    bool list = false;
};

bool
matchValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

Options
parse(int argc, char **argv)
{
    Options o;
    std::string v;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (matchValue(a, "--experiment", v)) {
            if (v != "all")
                o.experiments = splitCsv(v);
        } else if (matchValue(a, "--jobs", v)) {
            o.jobs = static_cast<unsigned>(std::strtoul(
                v.c_str(), nullptr, 10));
        } else if (matchValue(a, "--format", v)) {
            o.format = v;
        } else if (matchValue(a, "--out", v)) {
            o.outDir = v;
        } else if (matchValue(a, "--insts", v)) {
            o.params.insts = std::strtoull(v.c_str(), nullptr, 10);
        } else if (matchValue(a, "--seed", v)) {
            o.params.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (std::strcmp(a, "--list") == 0) {
            o.list = true;
        } else {
            fatal("unknown option '", a, "' (see docs/CLI.md)");
        }
    }
    if (o.format != "text" && o.format != "csv" && o.format != "json")
        fatal("unknown format '", o.format, "' (text | csv | json)");
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    if (o.list) {
        for (const auto &e : bench::allExperiments())
            std::printf("%-11s %s\n", e.name.c_str(), e.title.c_str());
        return 0;
    }

    std::vector<const bench::Experiment *> selected;
    if (o.experiments.empty()) {
        for (const auto &e : bench::allExperiments())
            selected.push_back(&e);
    } else {
        for (const auto &name : o.experiments) {
            const auto *e = bench::findExperiment(name);
            if (!e)
                fatal("unknown experiment '", name,
                      "' (fgstp_bench --list)");
            selected.push_back(e);
        }
    }

    unsigned jobs = o.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    ThreadPool pool(jobs);

    // Schedule everything up front, collect in selection order.
    std::vector<bench::ScheduledExperiment> scheduled;
    scheduled.reserve(selected.size());
    for (const auto *e : selected)
        scheduled.push_back(
            bench::scheduleExperiment(*e, o.params, pool));

    int failures = 0;
    bool first = true;
    for (auto &s : scheduled) {
        const auto *e = s.experiment;
        try {
            auto run =
                bench::collectExperiment(std::move(s), o.params);
            if (o.format == "json") {
                const std::string path =
                    o.outDir + "/BENCH_" + e->name + ".json";
                std::ofstream out(path);
                if (!out)
                    fatal("cannot open '", path, "' for writing");
                bench::renderJson(out, run, o.params, pool.size());
                std::printf("%-11s %4zu jobs %9.1f ms  -> %s\n",
                            e->name.c_str(), run.cells.size(),
                            run.wallTimeMs, path.c_str());
            } else {
                if (!first)
                    std::cout << "\n";
                bench::renderText(std::cout, run, o.format == "csv");
            }
            first = false;
        } catch (const std::exception &ex) {
            std::fprintf(stderr, "fgstp_bench: experiment %s failed: %s\n",
                         e->name.c_str(), ex.what());
            ++failures;
        }
    }
    return failures ? 1 : 0;
}
