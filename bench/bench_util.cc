#include "bench/bench_util.hh"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <tuple>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/util.hh"

namespace fgstp::bench
{

namespace
{

Sample
toSample(const sim::RunResult &r)
{
    return {r.cycles, r.instructions};
}

// ---- per-cell hardening state ---------------------------------------------

std::atomic<bool> cellCheck{false};
std::atomic<bool> cellInject{false};
std::mutex cellPlanMutex;
harden::FaultPlan cellPlan; // guarded by cellPlanMutex

/**
 * Attaches a golden-model checker when per-cell checking is on. The
 * golden stream is a second SyntheticWorkload over the same (bench,
 * seed) — the trace is post-execution, so it *is* the reference
 * architectural stream. Returns the owning pointer; the caller keeps
 * it alive across run().
 */
std::unique_ptr<harden::CommitChecker>
maybeChecker(sim::Machine &m, const std::string &bench,
             std::uint64_t seed)
{
    if (!cellCheck.load(std::memory_order_relaxed))
        return nullptr;
    auto golden = std::make_unique<workload::SyntheticWorkload>(
        workload::profileByName(bench), seed);
    auto checker = std::make_unique<harden::CommitChecker>(
        std::move(golden), bench + "/" + std::string(m.kind()));
    m.attachCommitChecker(checker.get());
    return checker;
}

/** Arms the cell's fault plan (Fg-STP machines only), reseeded so
 *  each cell draws an independent deterministic fault stream. */
void
maybeInject(part::FgstpMachine &m, std::uint64_t seed)
{
    if (!cellInject.load(std::memory_order_relaxed))
        return;
    harden::FaultPlan p;
    {
        std::lock_guard<std::mutex> lock(cellPlanMutex);
        p = cellPlan;
    }
    p.seed ^= seed;
    m.enableFaultInjection(p);
}

// ---- per-cell shared-bus state --------------------------------------------

std::atomic<bool> cellBusOn{false};
std::mutex cellBusMutex;
uncore::BusConfig cellBusCfg; // guarded by cellBusMutex

/** Attaches the cell bus to a single-core-family machine (before any
 *  monitor: observability sizes histograms from the attached bus). */
void
maybeBus(sim::SingleCoreMachine &m)
{
    if (!cellBusOn.load(std::memory_order_relaxed))
        return;
    uncore::BusConfig bc;
    {
        std::lock_guard<std::mutex> lock(cellBusMutex);
        bc = cellBusCfg;
    }
    m.enableSharedBus(bc);
}

/** Folds the cell bus into an Fg-STP configuration. */
part::FgstpConfig
withCellBus(part::FgstpConfig cfg)
{
    if (cellBusOn.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(cellBusMutex);
        cfg.bus = cellBusCfg;
    }
    return cfg;
}

// ---- per-cell coherence state ---------------------------------------------

std::atomic<int> cellCoherenceSel{
    static_cast<int>(mem::CoherenceKind::Flat)};

/** Folds the cell coherence model into a hierarchy configuration. */
mem::HierarchyConfig
withCellCoherence(mem::HierarchyConfig cfg)
{
    cfg.coherence = static_cast<mem::CoherenceKind>(
        cellCoherenceSel.load(std::memory_order_relaxed));
    return cfg;
}

// ---- per-cell steering state ----------------------------------------------

std::atomic<bool> cellSteerOn{false};
std::mutex cellSteerMutex;
part::SteeringSpec cellSteerSpec;     // guarded by cellSteerMutex
part::SteeringOverrides cellSteerOvr; // guarded by cellSteerMutex

/** Folds the cell steering weights into an Fg-STP configuration. */
part::FgstpConfig
withCellSteer(part::FgstpConfig cfg, const std::string &bench)
{
    if (cellSteerOn.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(cellSteerMutex);
        cfg.steer = part::resolveSteeringWeights(cellSteerSpec,
                                                 cellSteerOvr, bench);
    }
    return cfg;
}

// ---- sidecar capture state -------------------------------------------------

/**
 * Thread-local capture of the sidecar records the current cell run
 * appends to the shared collectors. A pool worker runs one cell at a
 * time, so everything captured between beginCellSidecarCapture() and
 * takeCellSidecarLines() on its thread belongs to that cell.
 */
thread_local bool sidecarCapturing = false;
thread_local std::vector<std::string> sidecarCaptured;

/**
 * Shortest round-trip decimal for a double (mirrors the result
 * cache's value encoding): to_chars output re-reads through strtod
 * to the identical bits, so a replayed record renders byte-identically.
 */
std::string
sidecarNum(double v)
{
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/**
 * One-line sidecar encodings, '|'-separated (machine and benchmark
 * labels are program-generated identifiers and never contain '|').
 * Per-core CPI payloads are comma-joined: the seven cause counters,
 * then the busContention and coherence sub-buckets.
 */
std::string
encodeCpiSidecar(const CellCpi &c)
{
    std::string s = "cpi|" + c.machine + "|" + c.bench + "|" +
                    std::to_string(c.seed) + "|" +
                    std::to_string(c.cycles) + "|" +
                    std::to_string(c.perCore.size());
    for (const obs::CpiStack &st : c.perCore) {
        s += '|';
        for (std::size_t j = 0; j < obs::numCpiCauses; ++j) {
            s += std::to_string(st.cycles[j]);
            s += ',';
        }
        s += std::to_string(st.busContention);
        s += ',';
        s += std::to_string(st.coherence);
    }
    return s;
}

std::string
encodeSamplingSidecar(const CellSampling &c)
{
    return "smp|" + c.machine + "|" + c.bench + "|" +
           std::to_string(c.seed) + "|" + std::to_string(c.intervals) +
           "|" + std::to_string(c.measuredInstructions) + "|" +
           std::to_string(c.measuredCycles) + "|" +
           std::to_string(c.fastForwarded) + "|" + sidecarNum(c.ipc) +
           "|" + sidecarNum(c.meanIpc) + "|" +
           sidecarNum(c.ciHalfWidth);
}

void
captureSidecar(std::string line)
{
    if (sidecarCapturing)
        sidecarCaptured.push_back(std::move(line));
}

std::vector<std::string>
splitSidecarFields(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t bar = line.find('|', start);
        if (bar == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, bar - start));
        start = bar + 1;
    }
}

bool
sidecarUint(const std::string &s, std::uint64_t &out)
{
    const auto res =
        std::from_chars(s.data(), s.data() + s.size(), out);
    return res.ec == std::errc() && res.ptr == s.data() + s.size();
}

bool
sidecarDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

bool
decodeCpiSidecar(const std::vector<std::string> &f, CellCpi &out)
{
    std::uint64_t cores = 0;
    if (f.size() < 6 || !sidecarUint(f[3], out.seed) ||
        !sidecarUint(f[4], out.cycles) || !sidecarUint(f[5], cores) ||
        f.size() != 6 + cores)
        return false;
    out.machine = f[1];
    out.bench = f[2];
    for (std::uint64_t k = 0; k < cores; ++k) {
        obs::CpiStack st;
        std::vector<std::uint64_t> vals;
        std::size_t start = 0;
        const std::string &payload = f[6 + k];
        while (start <= payload.size()) {
            const std::size_t comma = payload.find(',', start);
            const std::size_t end =
                comma == std::string::npos ? payload.size() : comma;
            std::uint64_t v = 0;
            if (!sidecarUint(payload.substr(start, end - start), v))
                return false;
            vals.push_back(v);
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (vals.size() != obs::numCpiCauses + 2)
            return false;
        for (std::size_t j = 0; j < obs::numCpiCauses; ++j)
            st.cycles[j] = vals[j];
        st.busContention = vals[obs::numCpiCauses];
        st.coherence = vals[obs::numCpiCauses + 1];
        out.perCore.push_back(st);
    }
    return true;
}

bool
decodeSamplingSidecar(const std::vector<std::string> &f,
                      CellSampling &out)
{
    if (f.size() != 11)
        return false;
    out.machine = f[1];
    out.bench = f[2];
    return sidecarUint(f[3], out.seed) &&
           sidecarUint(f[4], out.intervals) &&
           sidecarUint(f[5], out.measuredInstructions) &&
           sidecarUint(f[6], out.measuredCycles) &&
           sidecarUint(f[7], out.fastForwarded) &&
           sidecarDouble(f[8], out.ipc) &&
           sidecarDouble(f[9], out.meanIpc) &&
           sidecarDouble(f[10], out.ciHalfWidth);
}

// ---- per-cell observability collector ------------------------------------

std::atomic<bool> cellObsEnabled{false};
std::mutex cellObsMutex;
std::vector<CellCpi> cellObsSamples;

/** Attaches a CPI-stack monitor when cell observability is on. */
void
maybeMonitor(sim::Machine &m)
{
    if (!cellObsEnabled.load(std::memory_order_relaxed))
        return;
    obs::MonitorConfig mc;
    mc.cpiStack = true;
    m.enableObservability(mc);
}

/** Records the finished run's CPI stacks into the collector. */
void
maybeRecord(const sim::Machine &m, const std::string &bench,
            std::uint64_t seed, const Sample &s)
{
    if (!cellObsEnabled.load(std::memory_order_relaxed))
        return;
    CellCpi cell;
    cell.machine = m.kind();
    cell.bench = bench;
    cell.seed = seed;
    cell.cycles = s.cycles;
    for (unsigned c = 0; c < m.numCores(); ++c) {
        if (const obs::CoreMonitor *mon = m.monitor(c))
            cell.perCore.push_back(mon->cpi());
    }
    captureSidecar(encodeCpiSidecar(cell));
    std::lock_guard<std::mutex> lock(cellObsMutex);
    cellObsSamples.push_back(std::move(cell));
}

// ---- per-cell sampling state ----------------------------------------------

std::atomic<bool> cellSamplingOn{false};
std::mutex cellSamplingMutex;
sample::SampleSpec cellSamplingSpec;           // guarded by cellSamplingMutex
std::vector<CellSampling> cellSamplingRecords; // guarded by cellSamplingMutex

/**
 * Runs the machine to `insts`, sampled or full per the process-wide
 * switch. A sampled run returns the measured-region totals so callers
 * see the sampled IPC through the ordinary Sample math.
 */
Sample
runMachine(sim::Machine &m, const std::string &bench, std::uint64_t seed,
           std::uint64_t insts)
{
    if (!cellSamplingOn.load(std::memory_order_relaxed))
        return toSample(m.run(insts));

    // The per-interval CPI-stack self-check needs monitors; attach
    // them when observability did not already.
    if (!m.monitor(0)) {
        obs::MonitorConfig mc;
        mc.cpiStack = true;
        m.enableObservability(mc);
    }
    sample::SampleSpec spec;
    {
        std::lock_guard<std::mutex> lock(cellSamplingMutex);
        spec = cellSamplingSpec;
    }
    sample::Sampler sampler(m, spec);

    // Online repartitioning: when adaptive steering is on and this is
    // an Fg-STP machine, refit the weights from each measured
    // interval's CPI stacks (still live in the monitors at hook
    // time). Purely cell-local state, so any --jobs schedule runs the
    // identical weight sequence.
    if (cellSteerOn.load(std::memory_order_relaxed)) {
        part::SteeringSpec sp;
        {
            std::lock_guard<std::mutex> lock(cellSteerMutex);
            sp = cellSteerSpec;
        }
        auto *fm = dynamic_cast<part::FgstpMachine *>(&m);
        if (sp.adaptive && fm) {
            sampler.setIntervalHook(
                [fm](std::size_t, const sample::Interval &) {
                    obs::CpiStack stacks[2];
                    for (unsigned c = 0; c < 2; ++c) {
                        if (const obs::CoreMonitor *mon = fm->monitor(c))
                            stacks[c] = mon->cpi();
                    }
                    const auto prof = part::profileFrom(stacks, 2);
                    fm->applySteeringWeights(part::adaptSteeringWeights(
                        fm->steeringWeights(), prof));
                });
        }
    }

    const sample::SampleResult r = sampler.run(insts);

    CellSampling rec;
    rec.machine = m.kind();
    rec.bench = bench;
    rec.seed = seed;
    rec.intervals = r.intervals.size();
    rec.measuredInstructions = r.measuredInstructions();
    rec.measuredCycles = r.measuredCycles();
    rec.fastForwarded = r.fastForwarded;
    rec.ipc = r.ipc();
    rec.meanIpc = r.meanIpc();
    rec.ciHalfWidth = r.ciHalfWidth();
    captureSidecar(encodeSamplingSidecar(rec));
    {
        std::lock_guard<std::mutex> lock(cellSamplingMutex);
        cellSamplingRecords.push_back(std::move(rec));
    }
    return {r.measuredCycles(), r.measuredInstructions()};
}

} // namespace

CellTimeModel &
CellTimeModel::instance()
{
    static CellTimeModel model;
    return model;
}

void
CellTimeModel::record(const std::string &bench,
                      const std::string &machine, double wall_ms)
{
    std::lock_guard<std::mutex> lock(mtx);
    lastMs[bench + "/" + machine] = wall_ms;
    sumMs += wall_ms;
    ++count;
}

double
CellTimeModel::estimate(const std::string &bench,
                        const std::string &machine) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = lastMs.find(bench + "/" + machine);
    return it == lastMs.end() ? 0.0 : it->second;
}

bool
CellTimeModel::longPole(const std::string &bench,
                        const std::string &machine) const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (count < 4)
        return false;
    auto it = lastMs.find(bench + "/" + machine);
    return it != lastMs.end() && it->second >= 2.0 * (sumMs / count);
}

void
CellTimeModel::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    lastMs.clear();
    sumMs = 0.0;
    count = 0;
}

std::uint64_t
jobSeed(std::uint64_t eval_seed, std::string_view experiment,
        std::string_view bench, std::string_view config)
{
    // The field-separated FNV-1a + splitmix64 construction lives in
    // common/hash.hh, shared with the result-cache key derivation;
    // the seeds are bit-identical to the pre-refactor values.
    std::uint64_t h = hash::fnvOffsetBasis;
    h = hash::fnv1aField(h, experiment);
    h = hash::fnv1aField(h, bench);
    h = hash::fnv1aField(h, config);
    return hash::mix64(h ^ hash::mix64(eval_seed));
}

Sample
runSingle(const std::string &bench, const sim::MachinePreset &p,
          std::uint64_t insts, std::uint64_t seed)
{
    return runSingleWithCore(bench, p.core, p, insts, seed);
}

Sample
runSingleWithCore(const std::string &bench,
                  const core::CoreConfig &core_cfg,
                  const sim::MachinePreset &p, std::uint64_t insts,
                  std::uint64_t seed)
{
    workload::SyntheticWorkload w(workload::profileByName(bench), seed);
    sim::SingleCoreMachine m(core_cfg, withCellCoherence(p.memory), w);
    const auto checker = maybeChecker(m, bench, seed);
    maybeBus(m);
    maybeMonitor(m);
    const Sample s = runMachine(m, bench, seed, insts);
    maybeRecord(m, bench, seed, s);
    return s;
}

Sample
runFused(const std::string &bench, const sim::MachinePreset &p,
         std::uint64_t insts, std::uint64_t seed)
{
    return runFused(bench, p, p.fusionOverheads, insts, seed);
}

Sample
runFused(const std::string &bench, const sim::MachinePreset &p,
         const fusion::FusionOverheads &ovh, std::uint64_t insts,
         std::uint64_t seed)
{
    workload::SyntheticWorkload w(workload::profileByName(bench), seed);
    fusion::FusedMachine m(p.core, withCellCoherence(p.memory), w, ovh);
    const auto checker = maybeChecker(m, bench, seed);
    maybeBus(m);
    maybeMonitor(m);
    const Sample s = runMachine(m, bench, seed, insts);
    maybeRecord(m, bench, seed, s);
    return s;
}

Sample
runFgstp(const std::string &bench, const sim::MachinePreset &p,
         std::uint64_t insts, std::uint64_t seed)
{
    return runFgstp(bench, p, p.fgstp(), insts, seed);
}

Sample
runFgstp(const std::string &bench, const sim::MachinePreset &p,
         const part::FgstpConfig &cfg, std::uint64_t insts,
         std::uint64_t seed)
{
    workload::SyntheticWorkload w(workload::profileByName(bench), seed);
    part::FgstpMachine m(p.core, withCellCoherence(p.memory),
                         withCellSteer(withCellBus(cfg), bench), w);
    const auto checker = maybeChecker(m, bench, seed);
    maybeInject(m, seed);
    maybeMonitor(m);
    const Sample s = runMachine(m, bench, seed, insts);
    maybeRecord(m, bench, seed, s);
    return s;
}

FgstpRun
runFgstpFull(const std::string &bench, const sim::MachinePreset &p,
             const part::FgstpConfig &cfg, std::uint64_t insts,
             std::uint64_t seed)
{
    FgstpRun r;
    r.workload = std::make_unique<workload::SyntheticWorkload>(
        workload::profileByName(bench), seed);
    r.machine = std::make_unique<part::FgstpMachine>(
        p.core, withCellCoherence(p.memory),
        withCellSteer(withCellBus(cfg), bench), *r.workload);
    r.checker = maybeChecker(*r.machine, bench, seed);
    maybeInject(*r.machine, seed);
    maybeMonitor(*r.machine);
    r.sample = runMachine(*r.machine, bench, seed, insts);
    maybeRecord(*r.machine, bench, seed, r.sample);
    return r;
}

void
setCellHardening(const harden::FaultPlan &plan, bool check)
{
    {
        std::lock_guard<std::mutex> lock(cellPlanMutex);
        cellPlan = plan;
    }
    cellInject.store(plan.any(), std::memory_order_relaxed);
    cellCheck.store(check, std::memory_order_relaxed);
}

bool
cellCheckEnabled()
{
    return cellCheck.load(std::memory_order_relaxed);
}

bool
cellInjectEnabled()
{
    return cellInject.load(std::memory_order_relaxed);
}

void
setCellBus(const uncore::BusConfig &cfg, bool on)
{
    {
        std::lock_guard<std::mutex> lock(cellBusMutex);
        cellBusCfg = cfg;
    }
    cellBusOn.store(on && cfg.enabled, std::memory_order_relaxed);
}

bool
cellBusEnabled()
{
    return cellBusOn.load(std::memory_order_relaxed);
}

uncore::BusConfig
cellBusConfig()
{
    std::lock_guard<std::mutex> lock(cellBusMutex);
    return cellBusCfg;
}

void
setCellCoherence(mem::CoherenceKind kind)
{
    cellCoherenceSel.store(static_cast<int>(kind),
                           std::memory_order_relaxed);
}

mem::CoherenceKind
cellCoherenceKind()
{
    return static_cast<mem::CoherenceKind>(
        cellCoherenceSel.load(std::memory_order_relaxed));
}

void
setCellSteering(const part::SteeringSpec &spec,
                const part::SteeringOverrides &overrides, bool on)
{
    {
        std::lock_guard<std::mutex> lock(cellSteerMutex);
        cellSteerSpec = spec;
        cellSteerOvr = overrides;
    }
    cellSteerOn.store(on, std::memory_order_relaxed);
}

bool
cellSteeringEnabled()
{
    return cellSteerOn.load(std::memory_order_relaxed);
}

part::SteeringSpec
cellSteeringSpec()
{
    std::lock_guard<std::mutex> lock(cellSteerMutex);
    return cellSteerSpec;
}

void
enableCellObservability(bool on)
{
    cellObsEnabled.store(on, std::memory_order_relaxed);
}

bool
cellObservabilityEnabled()
{
    return cellObsEnabled.load(std::memory_order_relaxed);
}

namespace {

/*
 * Full-content three-way ordering over cells. Sorting by the header
 * keys alone is not a total order: a sweep can run the same
 * (machine, bench, seed) at several config points that tie on total
 * cycles, and std::sort is not stable, so ties would land in
 * completion order and std::unique (which only collapses adjacent
 * duplicates) would dedup a different number of rows at different
 * --jobs values. Breaking ties by the per-core payload keeps exact
 * re-runs adjacent and orders distinct-payload ties deterministically.
 */
int
compareCpiCells(const CellCpi &a, const CellCpi &b)
{
    if (auto t = std::tie(a.machine, a.bench, a.seed, a.cycles),
        u = std::tie(b.machine, b.bench, b.seed, b.cycles);
        t != u)
        return t < u ? -1 : 1;
    if (a.perCore.size() != b.perCore.size())
        return a.perCore.size() < b.perCore.size() ? -1 : 1;
    for (std::size_t i = 0; i < a.perCore.size(); ++i) {
        const obs::CpiStack &x = a.perCore[i];
        const obs::CpiStack &y = b.perCore[i];
        if (auto t = std::tie(x.cycles, x.busContention, x.coherence),
            u = std::tie(y.cycles, y.busContention, y.coherence);
            t != u)
            return t < u ? -1 : 1;
    }
    return 0;
}

} // namespace

std::vector<CellCpi>
takeCellCpiSamples()
{
    std::vector<CellCpi> out;
    {
        std::lock_guard<std::mutex> lock(cellObsMutex);
        out.swap(cellObsSamples);
    }
    std::sort(out.begin(), out.end(),
              [](const CellCpi &a, const CellCpi &b) {
                  return compareCpiCells(a, b) < 0;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const CellCpi &a, const CellCpi &b) {
                              return compareCpiCells(a, b) == 0;
                          }),
              out.end());
    return out;
}

void
setCellSampling(const sample::SampleSpec &spec, bool on)
{
    {
        std::lock_guard<std::mutex> lock(cellSamplingMutex);
        cellSamplingSpec = spec;
    }
    cellSamplingOn.store(on, std::memory_order_relaxed);
}

bool
cellSamplingEnabled()
{
    return cellSamplingOn.load(std::memory_order_relaxed);
}

std::vector<CellSampling>
takeCellSamplingRecords()
{
    std::vector<CellSampling> out;
    {
        std::lock_guard<std::mutex> lock(cellSamplingMutex);
        out.swap(cellSamplingRecords);
    }
    // Same total-order requirement as takeCellCpiSamples(): header
    // keys can tie across config points, so compare every field.
    const auto key = [](const CellSampling &c) {
        return std::tie(c.machine, c.bench, c.seed, c.intervals,
                        c.measuredInstructions, c.measuredCycles,
                        c.fastForwarded, c.ipc, c.meanIpc,
                        c.ciHalfWidth);
    };
    std::sort(out.begin(), out.end(),
              [&key](const CellSampling &a, const CellSampling &b) {
                  return key(a) < key(b);
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [&key](const CellSampling &a,
                                 const CellSampling &b) {
                              return key(a) == key(b);
                          }),
              out.end());
    return out;
}

void
beginCellSidecarCapture()
{
    sidecarCapturing = true;
    sidecarCaptured.clear();
}

std::vector<std::string>
takeCellSidecarLines()
{
    sidecarCapturing = false;
    std::vector<std::string> out;
    out.swap(sidecarCaptured);
    return out;
}

bool
replayCellSidecar(const std::vector<std::string> &lines)
{
    // Decode everything before touching the collectors, so a damaged
    // entry injects nothing at all.
    std::vector<CellCpi> cpi;
    std::vector<CellSampling> sampling;
    for (const std::string &line : lines) {
        const auto f = splitSidecarFields(line);
        if (!f.empty() && f[0] == "cpi") {
            CellCpi c;
            if (!decodeCpiSidecar(f, c))
                return false;
            cpi.push_back(std::move(c));
        } else if (!f.empty() && f[0] == "smp") {
            CellSampling c;
            if (!decodeSamplingSidecar(f, c))
                return false;
            sampling.push_back(std::move(c));
        } else {
            return false;
        }
    }
    if (!cpi.empty()) {
        std::lock_guard<std::mutex> lock(cellObsMutex);
        for (auto &c : cpi)
            cellObsSamples.push_back(std::move(c));
    }
    if (!sampling.empty()) {
        std::lock_guard<std::mutex> lock(cellSamplingMutex);
        for (auto &c : sampling)
            cellSamplingRecords.push_back(std::move(c));
    }
    return true;
}

std::vector<std::string>
allBenchmarks()
{
    std::vector<std::string> v;
    for (const auto &p : workload::spec2006Profiles())
        v.push_back(p.name);
    return v;
}

std::vector<std::string>
sweepBenchmarks()
{
    return {"perlbench", "gcc", "mcf", "hmmer", "gobmk", "libquantum",
            "namd", "lbm"};
}

double
geomeanRatio(const std::vector<double> &ratios)
{
    return geomean(ratios);
}

// ---- Table ----------------------------------------------------------------

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    sim_assert(cells.size() == headers.size(),
               "row width does not match header");
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
Table::render(std::ostream &os, bool csv) const
{
    if (csv) {
        for (std::size_t i = 0; i < headers.size(); ++i)
            os << headers[i] << (i + 1 < headers.size() ? "," : "\n");
        for (const auto &row : rows) {
            for (std::size_t i = 0; i < row.size(); ++i)
                os << row[i] << (i + 1 < row.size() ? "," : "\n");
        }
        return;
    }

    std::vector<std::size_t> widths(headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i)
        widths[i] = headers[i].size();
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i]
               << std::string(widths[i] - cells[i].size() + 1, ' ');
        }
        os << "\n";
    };

    print_row(headers);
    std::size_t total = headers.size();
    for (std::size_t w : widths)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
Table::print(bool csv) const
{
    render(std::cout, csv);
}

bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            return true;
    }
    return false;
}

void
banner(const std::string &what)
{
    std::printf("== %s ==\n", what.c_str());
}

} // namespace fgstp::bench
