#include "bench/bench_util.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/logging.hh"
#include "common/util.hh"

namespace fgstp::bench
{

namespace
{

Sample
toSample(const sim::RunResult &r)
{
    return {r.cycles, r.instructions};
}

} // namespace

Sample
runSingle(const std::string &bench, const sim::MachinePreset &p,
          std::uint64_t insts)
{
    return runSingleWithCore(bench, p.core, p, insts);
}

Sample
runSingleWithCore(const std::string &bench,
                  const core::CoreConfig &core_cfg,
                  const sim::MachinePreset &p, std::uint64_t insts)
{
    workload::SyntheticWorkload w(workload::profileByName(bench),
                                  evalSeed);
    sim::SingleCoreMachine m(core_cfg, p.memory, w);
    return toSample(m.run(insts));
}

Sample
runFused(const std::string &bench, const sim::MachinePreset &p,
         std::uint64_t insts)
{
    return runFused(bench, p, p.fusionOverheads, insts);
}

Sample
runFused(const std::string &bench, const sim::MachinePreset &p,
         const fusion::FusionOverheads &ovh, std::uint64_t insts)
{
    workload::SyntheticWorkload w(workload::profileByName(bench),
                                  evalSeed);
    fusion::FusedMachine m(p.core, p.memory, w, ovh);
    return toSample(m.run(insts));
}

Sample
runFgstp(const std::string &bench, const sim::MachinePreset &p,
         std::uint64_t insts)
{
    return runFgstp(bench, p, p.fgstp(), insts);
}

Sample
runFgstp(const std::string &bench, const sim::MachinePreset &p,
         const part::FgstpConfig &cfg, std::uint64_t insts,
         std::unique_ptr<part::FgstpMachine> *out)
{
    auto w = std::make_unique<workload::SyntheticWorkload>(
        workload::profileByName(bench), evalSeed);
    auto m = std::make_unique<part::FgstpMachine>(p.core, p.memory, cfg,
                                                  *w);
    const auto r = m->run(insts);
    if (out) {
        // Keep the workload alive alongside the machine.
        static std::vector<std::unique_ptr<workload::SyntheticWorkload>>
            keep_alive;
        keep_alive.push_back(std::move(w));
        *out = std::move(m);
    }
    return toSample(r);
}

std::vector<std::string>
allBenchmarks()
{
    std::vector<std::string> v;
    for (const auto &p : workload::spec2006Profiles())
        v.push_back(p.name);
    return v;
}

std::vector<std::string>
sweepBenchmarks()
{
    return {"perlbench", "gcc", "mcf", "hmmer", "gobmk", "libquantum",
            "namd", "lbm"};
}

double
geomeanRatio(const std::vector<double> &ratios)
{
    return geomean(ratios);
}

// ---- Table ----------------------------------------------------------------

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    sim_assert(cells.size() == headers.size(),
               "row width does not match header");
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
Table::print(bool csv) const
{
    if (csv) {
        for (std::size_t i = 0; i < headers.size(); ++i)
            std::printf("%s%s", headers[i].c_str(),
                        i + 1 < headers.size() ? "," : "\n");
        for (const auto &row : rows) {
            for (std::size_t i = 0; i < row.size(); ++i)
                std::printf("%s%s", row[i].c_str(),
                            i + 1 < row.size() ? "," : "\n");
        }
        return;
    }

    std::vector<std::size_t> widths(headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i)
        widths[i] = headers[i].size();
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::printf("%-*s ", static_cast<int>(widths[i]),
                        cells[i].c_str());
        }
        std::printf("\n");
    };

    print_row(headers);
    std::size_t total = headers.size();
    for (std::size_t w : widths)
        total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        print_row(row);
}

bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            return true;
    }
    return false;
}

void
banner(const std::string &what)
{
    std::printf("== %s ==\n", what.c_str());
}

} // namespace fgstp::bench
