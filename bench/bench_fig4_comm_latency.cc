/**
 * @file
 * Fig. 4: sensitivity to inter-core communication latency.
 *
 * Sweeps the operand-link latency and reports the Fg-STP geomean
 * speedup over one core (sweep subset of benchmarks); the Core Fusion
 * geomean at its fixed cross-backend delay is printed as the flat
 * reference series. Expected shape: Fg-STP degrades gracefully with
 * link latency because replication removes edges from critical paths.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 4: Fg-STP speedup vs link latency (medium CMP)");

    const auto p = sim::mediumPreset();
    const auto benches = bench::sweepBenchmarks();

    // Flat Core Fusion reference.
    std::vector<double> fusion_sp;
    std::vector<double> base_cycles;
    for (const auto &name : benches) {
        const auto base = bench::runSingle(name, p);
        const auto fused = bench::runFused(name, p);
        base_cycles.push_back(static_cast<double>(base.cycles));
        fusion_sp.push_back(
            static_cast<double>(base.cycles) / fused.cycles);
    }
    const double fusion_geo = bench::geomeanRatio(fusion_sp);

    Table t({"linkLatency", "fgStpSpeedup", "coreFusionRef"});
    for (const Cycle lat : {1, 2, 4, 8, 12, 16}) {
        auto cfg = p.fgstp();
        cfg.link.latency = lat;
        cfg.estCommCost = static_cast<std::uint32_t>(
            std::max<Cycle>(lat, 4) * 2);

        std::vector<double> sp;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto s = bench::runFgstp(benches[i], p, cfg,
                                           bench::defaultInsts);
            sp.push_back(base_cycles[i] / s.cycles);
        }
        t.addRow({std::to_string(lat),
                  Table::fmt(bench::geomeanRatio(sp)),
                  Table::fmt(fusion_geo)});
    }

    t.print(csv);
    return 0;
}
