/**
 * @file
 * Fig. 4: Fg-STP speedup vs inter-core link latency.
 *
 * Thin wrapper: runs the "fig4" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("fig4", argc, argv);
}
