/**
 * @file
 * Table 2: workload characterization.
 *
 * Per benchmark: baseline 1-core IPC (medium core), conditional-branch
 * MPKI, L1D MPKI and L2 MPKI — the sanity anchor showing the synthetic
 * SPEC2006-like workloads span the intended behaviour space.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/single_core.hh"
#include "trace/trace_stats.hh"
#include "workload/generator.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Table 2: workload characterization (medium 1-core)");

    const auto preset = sim::mediumPreset();
    Table t({"benchmark", "ipc", "brMPKI", "l1dMPKI", "l2MPKI",
             "loads%", "stores%"});

    for (const auto &name : bench::allBenchmarks()) {
        workload::SyntheticWorkload w(workload::profileByName(name),
                                      bench::evalSeed);
        sim::SingleCoreMachine m(preset.core, preset.memory, w);
        const auto r = m.run(bench::defaultInsts);

        const double kinsts = r.instructions / 1000.0;
        const auto &bs = m.branchStats(0);
        const auto &ms = m.memory().stats();

        workload::SyntheticWorkload w2(workload::profileByName(name),
                                       bench::evalSeed);
        const auto sum = trace::summarize(w2, bench::defaultInsts);

        t.addRow({name,
                  Table::fmt(r.ipc()),
                  Table::fmt(bs.totalMispredicts() / kinsts, 2),
                  Table::fmt(ms.l1dMisses / kinsts, 2),
                  Table::fmt(ms.l2Misses / kinsts, 2),
                  Table::fmt(100.0 * sum.fracLoads(), 1),
                  Table::fmt(100.0 * sum.fracStores(), 1)});
    }

    t.print(csv);
    return 0;
}
