/**
 * @file
 * The sweep-service layer of fgstp_bench: cache keys, sharding,
 * shard-document merge, and serve mode.
 *
 * This file owns the experiment-level semantics of the three
 * sweep-service features (mechanisms live in src/serve):
 *
 *   --cache=DIR    every cell is a pure function of its identity, so
 *                  paramsFingerprint() + the code-version stamp turn
 *                  (experiment, bench, machine, seed) into a durable
 *                  content-addressed key; submitCellJob does the
 *                  lookup-first/store-on-miss dance.
 *   --shard=i/N    scheduleShard simulates only the cells
 *                  serve::assignShards deals to rank i and
 *                  renderShardJson writes them as a partial-results
 *                  document; mergeShards re-reads a complete shard set
 *                  and reproduces the unsharded BENCH_<experiment>.json
 *                  byte-for-byte (modulo wallTimeMs lines).
 *   --serve        runCellServe answers newline-delimited JSON cell
 *                  requests over a serve::LineServer transport,
 *                  cache-first, simulating misses on the shared pool.
 *
 * Protocol and schema reference: docs/SERVICE.md.
 */

#ifndef FGSTP_BENCH_SWEEP_SERVICE_HH
#define FGSTP_BENCH_SWEEP_SERVICE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench/experiments.hh"
#include "serve/line_server.hh"
#include "serve/result_cache.hh"
#include "serve/shard.hh"

namespace fgstp::bench
{

/**
 * The canonical encoding of every RunParams field that changes what a
 * cell computes (instruction budget, seeds, sampling/bus/steering
 * specs, hardening toggles). Part of every cache key and recorded in
 * every shard document, where mergeShards uses it to reject mixing
 * shards of different runs.
 */
std::string paramsFingerprint(const RunParams &params);

/** The cache-key context for this run (fingerprint + code version). */
serve::CacheContext makeCacheContext(const RunParams &params);

/** The cache identity of one cell of `experiment`. */
serve::CellIdentity cellIdentity(const std::string &experiment,
                                 const Cell &cell);

// ---- sharding --------------------------------------------------------------

/** An experiment scheduled under --shard: only owned cells submitted. */
struct ShardScheduled
{
    const Experiment *experiment = nullptr;
    std::vector<Cell> cells;        ///< full canonical cell list
    std::vector<std::size_t> owned; ///< indices this rank simulates
    std::vector<std::future<CellResult>> futures; ///< parallel to owned
};

/**
 * makeCells + serve::assignShards + submitCellJob for the owned
 * subset. Ownership is a function of cell identity hashes, not of
 * submission order, so it is stable under experiment code motion.
 */
ShardScheduled scheduleShard(const Experiment &e, const RunParams &params,
                             const serve::ShardSpec &shard,
                             ThreadPool &pool);

/** A collected shard: results parallel to `owned`. */
struct ShardRun
{
    const Experiment *experiment = nullptr;
    std::vector<Cell> cells;
    std::vector<std::size_t> owned;
    std::vector<CellResult> results; ///< owned order
    double wallTimeMs = 0.0;

    std::size_t failedCells() const;
};

/** Waits for every owned cell (exceptions were captured per cell). */
ShardRun collectShard(ShardScheduled &&scheduled);

/**
 * Writes the shard document (docs/SERVICE.md): run metadata —
 * including the raw spec strings and fingerprint mergeShards needs to
 * reconstruct and validate the run — plus one indexed row per owned
 * cell.
 */
void renderShardJson(std::ostream &os, const ShardRun &run,
                     const RunParams &params,
                     const serve::ShardSpec &shard, unsigned pool_jobs);

// ---- merging ---------------------------------------------------------------

/** One experiment reassembled by mergeShards. */
struct MergedExperiment
{
    std::string experiment;
    std::string path; ///< the BENCH_<experiment>.json written
    std::size_t cellCount = 0;
    std::size_t failedCells = 0;
};

/**
 * Reassembles complete shard sets into BENCH_<experiment>.json files
 * under `out_dir`, byte-identical (modulo wallTimeMs lines) to the
 * unsharded run. `files` may span several experiments; each
 * experiment needs its full rank set. Throws JsonParseError for a
 * damaged file and ShardMergeError for an incomplete/mismatched set
 * or rows that no longer line up with the experiment's canonical cell
 * list.
 */
std::vector<MergedExperiment>
mergeShards(const std::vector<std::string> &files,
            const std::string &out_dir);

// ---- serve mode ------------------------------------------------------------

/**
 * Serves cell requests until shutdown (docs/SERVICE.md): each request
 * line names an experiment and optional bench/machine filters; every
 * matching cell streams back as one result row (cache-first via
 * params.cache, simulated on `pool` otherwise), terminated by a
 * "done" line. Malformed or unanswerable requests get an "error" line
 * and the server keeps going; {"shutdown": true} stops it.
 */
serve::ServeStats runCellServe(const serve::ServeConfig &config,
                               const RunParams &params,
                               ThreadPool &pool);

} // namespace fgstp::bench

#endif // FGSTP_BENCH_SWEEP_SERVICE_HH
