/**
 * @file
 * Fig. 2: per-benchmark speedup on the small 2-core CMP.
 *
 * Same series as Fig. 1 on the 2-wide design point; the paper reports
 * Fg-STP beating Core Fusion by ~7% here.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 2: speedup over 1 core, small 2-core CMP");

    const auto p = sim::smallPreset();
    Table t({"benchmark", "coreFusion", "fgStp", "fgStp/fusion"});

    std::vector<double> fusion_sp, fgstp_sp;
    for (const auto &name : bench::allBenchmarks()) {
        const auto base = bench::runSingle(name, p);
        const auto fused = bench::runFused(name, p);
        const auto stp = bench::runFgstp(name, p);

        const double sf =
            static_cast<double>(base.cycles) / fused.cycles;
        const double ss = static_cast<double>(base.cycles) / stp.cycles;
        fusion_sp.push_back(sf);
        fgstp_sp.push_back(ss);
        t.addRow({name, Table::fmt(sf), Table::fmt(ss),
                  Table::fmt(ss / sf)});
    }

    const double gf = bench::geomeanRatio(fusion_sp);
    const double gs = bench::geomeanRatio(fgstp_sp);
    t.addRow({"GEOMEAN", Table::fmt(gf), Table::fmt(gs),
              Table::fmt(gs / gf)});
    t.print(csv);

    std::printf("\npaper: Fg-STP beats Core Fusion by ~7%% on the "
                "small CMP; measured: %+.1f%%\n",
                100.0 * (gs / gf - 1.0));
    return 0;
}
