/**
 * @file
 * Fig. 5: sensitivity to the partition lookahead window.
 *
 * Sweeps the number of dynamic instructions the partition hardware
 * analyzes per chunk. Expected shape: speedup grows with the window
 * (more parallelism visible to the heuristic) and saturates — the
 * basis of the paper's "large instruction windows" claim.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 5: Fg-STP speedup vs partition window "
                  "(medium CMP)");

    const auto p = sim::mediumPreset();
    const auto benches = bench::sweepBenchmarks();

    std::vector<double> base_cycles;
    for (const auto &name : benches)
        base_cycles.push_back(static_cast<double>(
            bench::runSingle(name, p).cycles));

    Table t({"window", "fgStpSpeedup"});
    for (const std::uint32_t win : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        auto cfg = p.fgstp();
        cfg.windowSize = win;

        std::vector<double> sp;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto s = bench::runFgstp(benches[i], p, cfg,
                                           bench::defaultInsts);
            sp.push_back(base_cycles[i] / s.cycles);
        }
        t.addRow({std::to_string(win),
                  Table::fmt(bench::geomeanRatio(sp))});
    }

    t.print(csv);
    return 0;
}
