/**
 * @file
 * Fig. 3: where Fg-STP's mechanisms are exercised.
 *
 * Per benchmark on the medium CMP: fraction of instructions
 * replicated, fraction whose value crosses the link, placement split,
 * link transfers per kilo-instruction and store-set synchronizations.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 3: partition/communication/replication profile "
                  "(medium CMP)");

    const auto p = sim::mediumPreset();
    Table t({"benchmark", "repl%", "comm%", "core1%", "xfers/kinst",
             "syncs/kinst"});

    for (const auto &name : bench::allBenchmarks()) {
        std::unique_ptr<part::FgstpMachine> m;
        const auto s =
            bench::runFgstp(name, p, p.fgstp(), bench::defaultInsts, &m);
        const auto &ps = m->partitionStats();
        const auto &fs = m->fgstpStats();
        const double kinsts = s.instructions / 1000.0;

        t.addRow({name,
                  Table::fmt(100.0 * ps.replicationRate(), 2),
                  Table::fmt(100.0 * ps.commRate(), 2),
                  Table::fmt(100.0 * ps.remoteFraction(), 1),
                  Table::fmt(fs.valueTransfers / kinsts, 2),
                  Table::fmt(fs.predictedSyncs / kinsts, 2)});
    }

    t.print(csv);
    return 0;
}
