/**
 * @file
 * Fig. 1: speedup over one core on the medium 2-core CMP.
 *
 * Thin wrapper: runs the "fig1" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("fig1", argc, argv);
}
