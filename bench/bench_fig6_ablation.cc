/**
 * @file
 * Fig. 6: feature ablation.
 *
 * The abstract singles out the "extensive use of dependence
 * speculation, replication and communication" as what distinguishes
 * Fg-STP; this bench removes each feature and reports the geomean
 * speedup (medium CMP, sweep subset) for:
 *
 *   full            everything on (the Fig. 1 configuration)
 *   no-replication  cross-core values always communicated
 *   no-mem-spec     loads wait for older remote stores
 *   no-shared-pred  private per-core branch predictors
 *   branch-repl     control instructions executed on both cores
 *   none            replication and memory speculation both off
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 6: Fg-STP feature ablation (medium CMP)");

    const auto p = sim::mediumPreset();
    const auto benches = bench::sweepBenchmarks();

    std::vector<double> base_cycles;
    for (const auto &name : benches)
        base_cycles.push_back(static_cast<double>(
            bench::runSingle(name, p).cycles));

    auto geo_speedup = [&](const part::FgstpConfig &cfg) {
        std::vector<double> sp;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto s = bench::runFgstp(benches[i], p, cfg,
                                           bench::defaultInsts);
            sp.push_back(base_cycles[i] / s.cycles);
        }
        return bench::geomeanRatio(sp);
    };

    Table t({"variant", "fgStpSpeedup"});

    const auto full = p.fgstp();
    t.addRow({"full", Table::fmt(geo_speedup(full))});

    {
        auto cfg = full;
        cfg.replication = false;
        t.addRow({"no-replication", Table::fmt(geo_speedup(cfg))});
    }
    {
        auto cfg = full;
        cfg.memSpeculation = false;
        t.addRow({"no-mem-spec", Table::fmt(geo_speedup(cfg))});
    }
    {
        auto cfg = full;
        cfg.sharedPrediction = false;
        t.addRow({"no-shared-pred", Table::fmt(geo_speedup(cfg))});
    }
    {
        auto cfg = full;
        cfg.replicateBranches = true;
        t.addRow({"branch-repl", Table::fmt(geo_speedup(cfg))});
    }
    {
        auto cfg = full;
        cfg.replication = false;
        cfg.memSpeculation = false;
        t.addRow({"none", Table::fmt(geo_speedup(cfg))});
    }

    t.print(csv);
    return 0;
}
