/**
 * @file
 * The experiment registry and parallel runner for the evaluation.
 *
 * Every table/figure of the reproduction is described once, as an
 * Experiment: a set of independent *cells* — one (benchmark, machine,
 * config) simulation each — plus a reduce step that folds the cell
 * results into the table the paper reports. Cells are pure functions
 * of their captured inputs (workload seeds come from bench::jobSeed),
 * so a ThreadPool can run them in any order, at any parallelism, and
 * the reduced output is bit-identical to a serial run.
 *
 * Consumers:
 *   - bench/bench_runner.cc   the fgstp_bench CLI (text/CSV/JSON)
 *   - bench/bench_fig*.cc     legacy per-figure wrappers (legacyMain)
 *   - tests/test_bench_runner.cc  determinism and pool coverage
 *
 * The BENCH_<experiment>.json schema produced from these results is
 * specified in docs/STATS.md.
 */

#ifndef FGSTP_BENCH_EXPERIMENTS_HH
#define FGSTP_BENCH_EXPERIMENTS_HH

#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"

namespace fgstp::serve
{
class ProgressMeter;
class ResultCache;
} // namespace fgstp::serve

namespace fgstp::bench
{

/** Knobs shared by every cell of a sweep. */
struct RunParams
{
    std::uint64_t insts = defaultInsts; ///< instructions per machine run
    std::uint64_t seed = evalSeed;      ///< evaluation master seed
    bool sampled = false;               ///< SMARTS-style sampled cells
    sample::SampleSpec sample;          ///< schedule when sampled
    uncore::BusConfig bus;              ///< shared bus when bus.enabled
    bool steer = false;                 ///< per-cell steering weights on
    part::SteeringSpec steerSpec;       ///< resolved --steer spec

    /**
     * Coherence model every cell's memory hierarchy is built with:
     * the flat write-invalidate approximation (default) or the MESI
     * directory under --coherence=mesi. Part of the cache fingerprint
     * — the model changes every cell's timing.
     */
    mem::CoherenceKind coherence = mem::CoherenceKind::Flat;

    /**
     * --cpi-stack: per-cell observability is on, so cache entries
     * carry the CPI-stack sidecar records and a warm rerun replays
     * BENCH_cpistack.json byte-identically. Fingerprinted because
     * entries written without sidecars cannot serve a sidecar run.
     */
    bool cpiStack = false;

    // Raw CLI spec strings the resolved structs above came from, plus
    // the hardening toggles. A shard document records these so --merge
    // (and a restarted shard) reconstructs the exact run; they also
    // feed the cache-key fingerprint (bench/sweep_service.hh).
    std::string sampleSpecRaw; ///< --sample value ("" = defaults)
    std::string busSpecRaw;    ///< --bus value ("" = defaults)
    std::string steerSpecRaw;  ///< --steer value
    bool check = false;        ///< golden-model cross-check per cell
    std::string injectSpecRaw; ///< --inject fault plan ("" = none)

    /**
     * Code-version stamp rendered into report meta blocks; empty means
     * "this binary's" (fgstp::codeVersion()). --merge sets it to the
     * shard documents' stamp so a merged report attributes its numbers
     * to the build that actually produced them.
     */
    std::string codeVersion;

    // Sweep-service hooks (non-owning; null = feature off). The cache
    // makes submitCellJob lookup-first/store-on-miss; the progress
    // meter gets one tick per finished cell.
    serve::ResultCache *cache = nullptr;
    serve::ProgressMeter *progress = nullptr;
};

/**
 * One schedulable unit of work: a single simulation (or a paired
 * mini-comparison) whose result is a fixed-length metric vector the
 * owning experiment's reduce step knows how to interpret.
 */
struct Cell
{
    std::string bench;   ///< benchmark name (row identity)
    std::string machine; ///< machine/config-point label within the row
    std::uint64_t seed;  ///< workload seed the job runs with
    std::function<std::vector<double>()> fn;
};

/**
 * A cell's outcome plus the wall time the job took on its worker.
 * A cell that threw (watchdog trip, checker divergence, unrecoverable
 * injected fault, ...) is recorded with ok == false and the error
 * message, instead of killing the sweep — crash isolation is per
 * cell.
 */
struct CellResult
{
    std::vector<double> values;
    double wallTimeMs = 0.0;
    bool ok = true;
    std::string error;
};

/** A quantitative expectation the paper states for an experiment. */
struct PaperClaim
{
    std::string metric; ///< must match a headline metric name
    double expected;    ///< the paper's value for that metric
    std::string note;   ///< human-readable phrasing of the claim
};

/** Reduced output of one experiment. */
struct ExperimentOutput
{
    Table table;
    /** Named headline metrics (geomeans, ratios) for paper-vs-measured. */
    std::vector<std::pair<std::string, double>> headline;
    /** Optional free-text trailer printed after the table. */
    std::string footer;
};

/** One table/figure experiment of the evaluation. */
struct Experiment
{
    std::string name;   ///< CLI name: "table1", "fig1", "predictors"...
    std::string title;  ///< banner line
    std::string preset; ///< design point: "small", "medium" or "-"
    std::vector<PaperClaim> paper;
    /** Enumerates the cells in canonical order. */
    std::function<std::vector<Cell>(const RunParams &)> makeCells;
    /** Folds results (in makeCells order) into the reported table. */
    std::function<ExperimentOutput(const RunParams &,
                                   const std::vector<CellResult> &)>
        reduce;
};

/** The full registry, in presentation order (tables, then figures). */
const std::vector<Experiment> &allExperiments();

/** Looks up an experiment by name; nullptr when absent. */
const Experiment *findExperiment(const std::string &name);

// ---- running ---------------------------------------------------------------

/** An experiment whose cells have been submitted to a pool. */
struct ScheduledExperiment
{
    const Experiment *experiment = nullptr;
    std::vector<Cell> cells; ///< fn members consumed by submission
    std::vector<std::future<CellResult>> futures;
};

/**
 * Submits one cell to `pool`: the single submission path shared by
 * the batch sweep, --shard and --serve. Consumes `cell.fn`. The
 * worker looks the cell up in params.cache first (a hit skips the
 * simulation and replays the stored outcome, including a cached
 * failure), simulates and stores on a miss, and ticks params.progress
 * either way. Cell exceptions become ok == false results.
 */
std::future<CellResult> submitCellJob(ThreadPool &pool,
                                      const std::string &experiment,
                                      Cell &cell,
                                      const RunParams &params);

/**
 * Submits every cell of `e` to `pool` without waiting. Scheduling
 * all experiments before collecting any keeps the pool saturated
 * across experiment boundaries.
 */
ScheduledExperiment scheduleExperiment(const Experiment &e,
                                       const RunParams &params,
                                       ThreadPool &pool);

/** A fully-run experiment: reduced output plus per-job metadata. */
struct ExperimentRun
{
    const Experiment *experiment = nullptr;
    ExperimentOutput output;
    std::vector<Cell> cells;         ///< identity + seed per job
    std::vector<CellResult> results; ///< per-job outcome (cells order)
    double wallTimeMs = 0.0; ///< schedule-to-reduce elapsed time

    std::size_t
    failedCells() const
    {
        std::size_t n = 0;
        for (const auto &r : results)
            n += !r.ok;
        return n;
    }

    bool ok() const { return failedCells() == 0; }
};

/**
 * Waits for all cells, then reduces. Cell exceptions never propagate:
 * each failed cell is recorded in results (ok == false) and the
 * reduce step is skipped when any cell failed (the reducers index
 * positional metric vectors that a failed cell does not have).
 */
ExperimentRun collectExperiment(ScheduledExperiment &&scheduled,
                                const RunParams &params);

/**
 * Fills run.output from run.results: the experiment's reduce step
 * when every cell succeeded, the failed-cells summary footer
 * otherwise. Shared by collectExperiment and the shard merge path so
 * both produce byte-identical output for the same results.
 */
void finalizeRunOutput(ExperimentRun &run, const RunParams &params);

/** scheduleExperiment + collectExperiment in one call. */
ExperimentRun runExperiment(const Experiment &e, const RunParams &params,
                            ThreadPool &pool);

// ---- rendering -------------------------------------------------------------

/** Banner + aligned table (or CSV) + footer + paper-vs-measured. */
void renderText(std::ostream &os, const ExperimentRun &run, bool csv);

/**
 * The BENCH_<experiment>.json document (schema: docs/STATS.md).
 * Every field is deterministic except the run-environment metadata —
 * wall times, pool size, the scheduler and prefix-memo counters —
 * which is confined to lines containing "wallTimeMs" so consumers can
 * compare runs byte-for-byte modulo those lines. Pass the pool that
 * ran the cells to include its scheduler counters (nullptr omits
 * them, e.g. on the shard-merge path, which runs no cells).
 */
void renderJson(std::ostream &os, const ExperimentRun &run,
                const RunParams &params, unsigned pool_jobs,
                const ThreadPool *pool = nullptr);

/**
 * Entry point of the legacy one-binary-per-figure wrappers: runs one
 * experiment (hardware-concurrency pool) and prints it as text, or
 * CSV when argv contains --csv.
 */
int legacyMain(const char *experiment_name, int argc, char **argv);

} // namespace fgstp::bench

#endif // FGSTP_BENCH_EXPERIMENTS_HH
