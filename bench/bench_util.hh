/**
 * @file
 * Shared plumbing for the table/figure regeneration benches.
 *
 * Every experiment reproduces one table or figure of the evaluation
 * (see DESIGN.md's experiment index): it runs the relevant machines
 * over the SPEC2006-like workloads and reports the same rows/series
 * the paper does. This header holds the machine-run helpers and the
 * table formatter; the experiment descriptors themselves live in
 * bench/experiments.hh and are driven either by the fgstp_bench
 * runner or by the legacy one-binary-per-figure wrappers.
 */

#ifndef FGSTP_BENCH_BENCH_UTIL_HH
#define FGSTP_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "harden/commit_checker.hh"
#include "harden/fault.hh"
#include "obs/cpi_stack.hh"
#include "sample/sampler.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "uncore/bus.hh"
#include "workload/generator.hh"

namespace fgstp::bench
{

/** Instructions simulated per (benchmark, machine) data point. */
inline constexpr std::uint64_t defaultInsts = 40000;

/** Workload seed used throughout the evaluation. */
inline constexpr std::uint64_t evalSeed = 42;

/**
 * Derives the deterministic workload seed for one experiment cell
 * from the (evalSeed, experiment, bench, config) tuple.
 *
 * The derivation depends only on the cell's identity — never on
 * submission order, thread id or wall time — so a parallel sweep and
 * a serial sweep run every cell with the same seed and produce
 * bit-identical numbers. The config component is the experiment's
 * *base* configuration tag (its preset), shared by every machine and
 * swept-parameter point of one benchmark so that speedup ratios
 * compare runs of the same workload instance.
 */
std::uint64_t jobSeed(std::uint64_t eval_seed, std::string_view experiment,
                      std::string_view bench, std::string_view config);

/** One machine run's interesting outputs. */
struct Sample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    double
    ipc() const
    {
        return cycles
            ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** Runs the 1-core baseline on a named benchmark. */
Sample runSingle(const std::string &bench, const sim::MachinePreset &p,
                 std::uint64_t insts = defaultInsts,
                 std::uint64_t seed = evalSeed);

/** Runs the baseline with an explicit core config (Fig. 8 big core). */
Sample runSingleWithCore(const std::string &bench,
                         const core::CoreConfig &core_cfg,
                         const sim::MachinePreset &p,
                         std::uint64_t insts = defaultInsts,
                         std::uint64_t seed = evalSeed);

/** Runs the Core Fusion comparator. */
Sample runFused(const std::string &bench, const sim::MachinePreset &p,
                std::uint64_t insts = defaultInsts,
                std::uint64_t seed = evalSeed);
Sample runFused(const std::string &bench, const sim::MachinePreset &p,
                const fusion::FusionOverheads &ovh, std::uint64_t insts,
                std::uint64_t seed = evalSeed);

/** Runs Fg-STP and returns the headline sample. */
Sample runFgstp(const std::string &bench, const sim::MachinePreset &p,
                std::uint64_t insts = defaultInsts,
                std::uint64_t seed = evalSeed);
Sample runFgstp(const std::string &bench, const sim::MachinePreset &p,
                const part::FgstpConfig &cfg, std::uint64_t insts,
                std::uint64_t seed = evalSeed);

/**
 * Runs Fg-STP keeping the machine (and the workload it references)
 * alive for stats extraction. Each call owns its own state, so
 * concurrent calls from pool workers do not interfere.
 */
struct FgstpRun
{
    Sample sample;
    std::unique_ptr<workload::SyntheticWorkload> workload;
    std::unique_ptr<part::FgstpMachine> machine;
    /** Present when per-cell checking is on; owned past the machine
     *  so the attached pointer can never dangle mid-run. */
    std::unique_ptr<harden::CommitChecker> checker;
};

FgstpRun runFgstpFull(const std::string &bench,
                      const sim::MachinePreset &p,
                      const part::FgstpConfig &cfg, std::uint64_t insts,
                      std::uint64_t seed = evalSeed);

// ---- per-cell hardening ----------------------------------------------------

/**
 * Process-wide per-cell hardening, mirroring enableCellObservability:
 * when `check` is on, every machine the run helpers construct gets a
 * golden-model CommitChecker fed by a second SyntheticWorkload of the
 * same (bench, seed); when `plan.any()`, Fg-STP machines additionally
 * run under the fault plan, reseeded per cell (plan.seed ^ cell seed)
 * so every job draws its own deterministic fault stream. Faults
 * target the Fg-STP cross-core machinery only — single-core and
 * fusion cells are never injected. A cell that diverges, deadlocks or
 * hits an unrecoverable fault throws; the experiment runner records
 * it as a failed cell instead of crashing the sweep.
 */
void setCellHardening(const harden::FaultPlan &plan, bool check);
bool cellCheckEnabled();
bool cellInjectEnabled();

// ---- per-cell shared bus ---------------------------------------------------

/**
 * Process-wide per-cell shared-bus arbitration, mirroring
 * setCellHardening: when on, every machine the run helpers construct
 * contends its uncore traffic (operand transfers, dirty-forwards,
 * invalidations) through a SharedBus built from `cfg` — the Fg-STP
 * machines via FgstpConfig::bus, the single-core family via
 * enableSharedBus(). Off (the default) keeps every cell bit-identical
 * to the bus-less model.
 */
void setCellBus(const uncore::BusConfig &cfg, bool on);
bool cellBusEnabled();
uncore::BusConfig cellBusConfig();

// ---- per-cell coherence model ----------------------------------------------

/**
 * Process-wide per-cell coherence selection, mirroring setCellBus:
 * every machine the run helpers construct gets its memory hierarchy
 * built with this CoherenceKind — the directory-based MESI protocol
 * under --coherence=mesi, the flat write-invalidate approximation
 * otherwise. Flat (the default) keeps every cell bit-identical to an
 * unconfigured run. See docs/UNCORE.md ("The coherence directory").
 */
void setCellCoherence(mem::CoherenceKind kind);
mem::CoherenceKind cellCoherenceKind();

// ---- per-cell steering weights ---------------------------------------------

/**
 * Process-wide per-cell steering configuration, mirroring setCellBus:
 * when on, every Fg-STP machine the run helpers construct resolves
 * its partitioner cost-model weights from `spec` — fixed explicit
 * weights, the per-benchmark offline-tuned table (`tuned`), and/or
 * online refitting per sampling interval (`adaptive`; only effective
 * when per-cell sampling is also on). Off (the default) keeps every
 * cell bit-identical to the fixed default weights. Machines without a
 * partition unit are never affected. See docs/STEERING.md.
 */
void setCellSteering(const part::SteeringSpec &spec,
                     const part::SteeringOverrides &overrides, bool on);
bool cellSteeringEnabled();
part::SteeringSpec cellSteeringSpec();

// ---- per-cell observability ------------------------------------------------

/** One experiment cell's CPI-stack measurement. */
struct CellCpi
{
    std::string machine; ///< machine kind ("single-core", "fg-stp", ...)
    std::string bench;
    std::uint64_t seed = 0;
    std::uint64_t cycles = 0;
    std::vector<obs::CpiStack> perCore;
};

/**
 * Turns CPI-stack collection on (or off) for every machine the run
 * helpers above construct, process-wide. When enabled, each completed
 * run records a CellCpi into a shared collector; pool workers may
 * record concurrently. Off by default, where the helpers attach no
 * monitor and the timing models run uninstrumented.
 */
void enableCellObservability(bool on);
bool cellObservabilityEnabled();

/**
 * Drains the collector: returns every recorded cell in a total order
 * over its full contents (header keys, then the per-core payload)
 * with exact duplicates removed — experiments sharing a cell re-run
 * it, and the runs are deterministic — so the output is identical at
 * any --jobs value even when several config points tie on
 * (machine, bench, seed, cycles).
 */
std::vector<CellCpi> takeCellCpiSamples();

// ---- per-cell sampled simulation -------------------------------------------

/** One experiment cell's sampled-run summary. */
struct CellSampling
{
    std::string machine;
    std::string bench;
    std::uint64_t seed = 0;
    std::uint64_t intervals = 0;
    std::uint64_t measuredInstructions = 0;
    std::uint64_t measuredCycles = 0;
    std::uint64_t fastForwarded = 0;
    double ipc = 0.0;         ///< instruction-weighted sampled IPC
    double meanIpc = 0.0;     ///< unweighted per-interval mean
    double ciHalfWidth = 0.0; ///< 95% CI half-width on meanIpc
};

/**
 * Switches every machine the run helpers construct to SMARTS-style
 * sampled simulation (src/sample), process-wide. A sampled cell's
 * Sample carries the measured-region totals, so downstream IPC and
 * speedup math transparently uses the sampled estimate; each cell also
 * records a CellSampling row into a shared collector. Machines get a
 * CPI-stack monitor if observability did not already attach one, so
 * the per-interval stack invariant is verified on every cell.
 */
void setCellSampling(const sample::SampleSpec &spec, bool on);
bool cellSamplingEnabled();

/**
 * Drains the sampling collector, totally ordered over the full record
 * and deduplicated like takeCellCpiSamples() so the output is
 * identical at any --jobs value.
 */
std::vector<CellSampling> takeCellSamplingRecords();

// ---- sidecar capture for the result cache ----------------------------------

/**
 * Captures the observability sidecar records — the CellCpi and
 * CellSampling rows a cell run appends to the shared collectors — of
 * the *current thread*, so submitCellJob can store them in the cell's
 * cache entry. The capture is thread-local: a pool worker runs one
 * cell at a time, so everything recorded between begin and take
 * belongs to that cell. begin clears any stale capture left by a
 * previous cell on the same worker.
 */
void beginCellSidecarCapture();

/** Ends the thread's capture and returns the encoded record lines. */
std::vector<std::string> takeCellSidecarLines();

/**
 * Re-injects cached sidecar lines into the shared collectors, so a
 * warm cache run's BENCH_cpistack.json / BENCH_sampling.json are
 * byte-identical to the cold run that populated the cache. All-or-
 * nothing: returns false (injecting nothing) when any line fails to
 * decode — the caller treats that as a cache miss and resimulates.
 */
bool replayCellSidecar(const std::vector<std::string> &lines);

// ---- cell wall-time model --------------------------------------------------

/**
 * Process-wide record of observed per-cell wall times, keyed by
 * (bench, machine). Completing cells feed it — cache hits replay
 * their stored wallTimeMs, so a warm --cache dir seeds it almost
 * instantly — and submitCellJob consults it to route predicted
 * long-pole cells to the Sts scheduler's high-priority lane. Purely a
 * scheduling input: results never depend on it (see the ThreadPool
 * determinism contract).
 */
class CellTimeModel
{
  public:
    static CellTimeModel &instance();

    /** Records one completed cell's wall time. */
    void record(const std::string &bench, const std::string &machine,
                double wall_ms);

    /** Last observed wall time for the key; 0 when unknown. */
    double estimate(const std::string &bench,
                    const std::string &machine) const;

    /**
     * True when the key's estimated wall time marks it as a long-pole
     * cell: at least twice the mean of everything observed so far
     * (with a minimum of four observations, so a cold model never
     * flags anything).
     */
    bool longPole(const std::string &bench,
                  const std::string &machine) const;

    /** Forgets everything (tests). */
    void clear();

  private:
    mutable std::mutex mtx;
    std::map<std::string, double> lastMs; ///< "bench/machine" -> ms
    double sumMs = 0.0;
    std::uint64_t count = 0;
};

/** All nineteen benchmark names, SPECint first. */
std::vector<std::string> allBenchmarks();

/** A faster representative subset for parameter sweeps. */
std::vector<std::string> sweepBenchmarks();

/** Geomean over per-benchmark ratios. */
double geomeanRatio(const std::vector<double> &ratios);

// ---- table printing --------------------------------------------------------

/** Simple column-aligned table with optional CSV output. */
class Table
{
  public:
    Table() = default;
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Renders to an arbitrary stream; csv selects comma separation. */
    void render(std::ostream &os, bool csv) const;

    /** Renders to stdout; csv selects comma-separated output. */
    void print(bool csv) const;

    const std::vector<std::string> &headerCells() const { return headers; }
    const std::vector<std::vector<std::string>> &
    rowCells() const
    {
        return rows;
    }

    static std::string fmt(double v, int precision = 3);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** True when argv contains --csv. */
bool wantCsv(int argc, char **argv);

/** Prints the standard bench banner. */
void banner(const std::string &what);

} // namespace fgstp::bench

#endif // FGSTP_BENCH_BENCH_UTIL_HH
