/**
 * @file
 * Shared plumbing for the table/figure regeneration benches.
 *
 * Every bench binary reproduces one table or figure of the evaluation
 * (see DESIGN.md's experiment index): it runs the relevant machines
 * over the SPEC2006-like workloads and prints the same rows/series the
 * paper reports, as an aligned text table (default) or CSV (--csv).
 */

#ifndef FGSTP_BENCH_BENCH_UTIL_HH
#define FGSTP_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "workload/generator.hh"

namespace fgstp::bench
{

/** Instructions simulated per (benchmark, machine) data point. */
inline constexpr std::uint64_t defaultInsts = 40000;

/** Workload seed used throughout the evaluation. */
inline constexpr std::uint64_t evalSeed = 42;

/** One machine run's interesting outputs. */
struct Sample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    double
    ipc() const
    {
        return cycles
            ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** Runs the 1-core baseline on a named benchmark. */
Sample runSingle(const std::string &bench, const sim::MachinePreset &p,
                 std::uint64_t insts = defaultInsts);

/** Runs the baseline with an explicit core config (Fig. 8 big core). */
Sample runSingleWithCore(const std::string &bench,
                         const core::CoreConfig &core_cfg,
                         const sim::MachinePreset &p,
                         std::uint64_t insts = defaultInsts);

/** Runs the Core Fusion comparator. */
Sample runFused(const std::string &bench, const sim::MachinePreset &p,
                std::uint64_t insts = defaultInsts);
Sample runFused(const std::string &bench, const sim::MachinePreset &p,
                const fusion::FusionOverheads &ovh,
                std::uint64_t insts);

/** Runs Fg-STP; optionally returns the machine for stats extraction. */
Sample runFgstp(const std::string &bench, const sim::MachinePreset &p,
                std::uint64_t insts = defaultInsts);
Sample runFgstp(const std::string &bench, const sim::MachinePreset &p,
                const part::FgstpConfig &cfg, std::uint64_t insts,
                std::unique_ptr<part::FgstpMachine> *out = nullptr);

/** All nineteen benchmark names, SPECint first. */
std::vector<std::string> allBenchmarks();

/** A faster representative subset for parameter sweeps. */
std::vector<std::string> sweepBenchmarks();

/** Geomean over per-benchmark ratios. */
double geomeanRatio(const std::vector<double> &ratios);

// ---- table printing --------------------------------------------------------

/** Simple column-aligned table with optional CSV output. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Renders to stdout; csv selects comma-separated output. */
    void print(bool csv) const;

    static std::string fmt(double v, int precision = 3);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** True when argv contains --csv. */
bool wantCsv(int argc, char **argv);

/** Prints the standard bench banner. */
void banner(const std::string &what);

} // namespace fgstp::bench

#endif // FGSTP_BENCH_BENCH_UTIL_HH
