/**
 * @file
 * The experiment descriptors (tables 1–2, figures 1–10, the predictor
 * comparison, the steering sweep and the fault-injection campaign)
 * plus the machinery that runs them: cell
 * scheduling onto a ThreadPool, collection/reduction, and the
 * text/CSV/JSON renderers. See experiments.hh for the model and
 * docs/STATS.md for the JSON schema.
 */

#include "bench/experiments.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "branch/direction_predictor.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "harden/campaign.hh"
#include "common/logging.hh"
#include "common/version.hh"
#include "serve/progress.hh"
#include "serve/result_cache.hh"
#include "fusion/fused_config.hh"
#include "power/energy_model.hh"
#include "trace/trace_stats.hh"
#include "workload/generator.hh"

namespace fgstp::bench
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

std::string
pct(double ratio_minus_one)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  100.0 * ratio_minus_one);
    return buf;
}

/** Finds a headline metric by name; NaN when absent. */
double
headlineValue(const ExperimentOutput &out, const std::string &metric)
{
    for (const auto &[k, v] : out.headline) {
        if (k == metric)
            return v;
    }
    return std::nan("");
}

// ---- Fig. 1 / Fig. 2: speedup over one core --------------------------------

Experiment
speedupExperiment(std::string name, std::string title,
                  std::string preset_name, double paper_ratio,
                  std::string paper_note)
{
    Experiment e;
    e.name = name;
    e.title = std::move(title);
    e.preset = preset_name;
    e.paper = {{"fgstpVsFusionGeomean", paper_ratio, paper_note}};

    e.makeCells = [name, preset_name](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, name, b, preset_name);
            cells.push_back({b, "single", seed,
                [b, prm, seed, preset_name] {
                    const auto p = sim::presetByName(preset_name);
                    return std::vector<double>{static_cast<double>(
                        runSingle(b, p, prm.insts, seed).cycles)};
                }});
            cells.push_back({b, "fusion", seed,
                [b, prm, seed, preset_name] {
                    const auto p = sim::presetByName(preset_name);
                    return std::vector<double>{static_cast<double>(
                        runFused(b, p, prm.insts, seed).cycles)};
                }});
            cells.push_back({b, "fgstp", seed,
                [b, prm, seed, preset_name] {
                    const auto p = sim::presetByName(preset_name);
                    return std::vector<double>{static_cast<double>(
                        runFgstp(b, p, prm.insts, seed).cycles)};
                }});
        }
        return cells;
    };

    e.reduce = [paper_note](const RunParams &,
                            const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table =
            Table({"benchmark", "coreFusion", "fgStp", "fgStp/fusion"});
        const auto benches = allBenchmarks();
        std::vector<double> fusion_sp, fgstp_sp;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const double base = res[3 * i].values[0];
            const double fused = res[3 * i + 1].values[0];
            const double stp = res[3 * i + 2].values[0];
            const double sf = base / fused;
            const double ss = base / stp;
            fusion_sp.push_back(sf);
            fgstp_sp.push_back(ss);
            out.table.addRow({benches[i], Table::fmt(sf),
                              Table::fmt(ss), Table::fmt(ss / sf)});
        }
        const double gf = geomeanRatio(fusion_sp);
        const double gs = geomeanRatio(fgstp_sp);
        out.table.addRow({"GEOMEAN", Table::fmt(gf), Table::fmt(gs),
                          Table::fmt(gs / gf)});
        out.headline = {{"coreFusionGeomeanSpeedup", gf},
                        {"fgstpGeomeanSpeedup", gs},
                        {"fgstpVsFusionGeomean", gs / gf}};
        out.footer = "paper: " + paper_note + "; measured: " +
                     pct(gs / gf - 1.0);
        return out;
    };
    return e;
}

// ---- Table 1: machine configurations ---------------------------------------

Experiment
table1Experiment()
{
    Experiment e;
    e.name = "table1";
    e.title = "Table 1: machine configurations";
    e.preset = "-";
    e.makeCells = [](const RunParams &) { return std::vector<Cell>{}; };
    e.reduce = [](const RunParams &, const std::vector<CellResult> &) {
        const auto small = sim::smallPreset();
        const auto medium = sim::mediumPreset();

        ExperimentOutput out;
        out.table = Table({"parameter", "small", "medium"});
        auto row = [&](const char *name, std::uint64_t s,
                       std::uint64_t m) {
            out.table.addRow(
                {name, std::to_string(s), std::to_string(m)});
        };

        row("fetch/decode/issue/commit width", small.core.fetchWidth,
            medium.core.fetchWidth);
        row("ROB entries", small.core.robSize, medium.core.robSize);
        row("IQ entries", small.core.iqSize, medium.core.iqSize);
        row("LQ entries", small.core.lqSize, medium.core.lqSize);
        row("SQ entries", small.core.sqSize, medium.core.sqSize);
        row("front-end depth (cycles)", small.core.frontendDepth,
            medium.core.frontendDepth);
        row("int ALUs", small.core.fuPerCluster.intAlu,
            medium.core.fuPerCluster.intAlu);
        row("int mul/div units", small.core.fuPerCluster.intMulDiv,
            medium.core.fuPerCluster.intMulDiv);
        row("FP units", small.core.fuPerCluster.fp,
            medium.core.fuPerCluster.fp);
        row("memory ports", small.core.fuPerCluster.memPorts,
            medium.core.fuPerCluster.memPorts);
        row("predictor entries", small.core.predictor.tableEntries,
            medium.core.predictor.tableEntries);
        row("BTB entries", small.core.predictor.btbEntries,
            medium.core.predictor.btbEntries);
        row("L1I/L1D size (KB)", small.memory.l1d.sizeBytes / 1024,
            medium.memory.l1d.sizeBytes / 1024);
        row("L1 latency", small.memory.l1Latency,
            medium.memory.l1Latency);
        row("shared L2 size (KB)", small.memory.l2.sizeBytes / 1024,
            medium.memory.l2.sizeBytes / 1024);
        row("L2 latency", small.memory.l2Latency,
            medium.memory.l2Latency);
        row("DRAM latency", small.memory.dramLatency,
            medium.memory.dramLatency);
        row("L1D MSHRs", small.memory.numMshrs, medium.memory.numMshrs);
        row("link latency (cycles)", small.link.latency,
            medium.link.latency);
        row("link width (values/cycle)", small.link.width,
            medium.link.width);
        row("Fg-STP partition window", small.partitionWindow,
            medium.partitionWindow);
        row("fusion extra FE stages",
            small.fusionOverheads.extraFrontendStages,
            medium.fusionOverheads.extraFrontendStages);
        row("fusion cross-backend delay",
            small.fusionOverheads.crossBackendDelay,
            medium.fusionOverheads.crossBackendDelay);
        return out;
    };
    return e;
}

// ---- Table 2: workload characterization ------------------------------------

Experiment
table2Experiment()
{
    Experiment e;
    e.name = "table2";
    e.title = "Table 2: workload characterization (medium 1-core)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "table2", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto preset = sim::mediumPreset();
                workload::SyntheticWorkload w(
                    workload::profileByName(b), seed);
                sim::SingleCoreMachine m(preset.core, preset.memory, w);
                const auto r = m.run(prm.insts);

                const double kinsts =
                    std::max(1.0, r.instructions / 1000.0);
                const auto &bs = m.branchStats(0);
                const auto &ms = m.memory().stats();

                workload::SyntheticWorkload w2(
                    workload::profileByName(b), seed);
                const auto sum = trace::summarize(w2, prm.insts);

                return std::vector<double>{
                    r.ipc(),
                    bs.totalMispredicts() / kinsts,
                    ms.l1dMisses / kinsts,
                    ms.l2Misses / kinsts,
                    100.0 * sum.fracLoads(),
                    100.0 * sum.fracStores()};
            }});
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"benchmark", "ipc", "brMPKI", "l1dMPKI",
                           "l2MPKI", "loads%", "stores%"});
        const auto benches = allBenchmarks();
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto &v = res[i].values;
            out.table.addRow({benches[i], Table::fmt(v[0]),
                              Table::fmt(v[1], 2), Table::fmt(v[2], 2),
                              Table::fmt(v[3], 2), Table::fmt(v[4], 1),
                              Table::fmt(v[5], 1)});
        }
        return out;
    };
    return e;
}

// ---- Fig. 3: partition/communication/replication profile -------------------

Experiment
fig3Experiment()
{
    Experiment e;
    e.name = "fig3";
    e.title = "Fig. 3: partition/communication/replication profile "
              "(medium CMP)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig3", b, "medium");
            cells.push_back({b, "fgstp", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                const auto r =
                    runFgstpFull(b, p, p.fgstp(), prm.insts, seed);
                const auto &ps = r.machine->partitionStats();
                const auto &fs = r.machine->fgstpStats();
                const double kinsts =
                    std::max(1.0, r.sample.instructions / 1000.0);
                return std::vector<double>{
                    100.0 * ps.replicationRate(),
                    100.0 * ps.commRate(),
                    100.0 * ps.remoteFraction(),
                    fs.valueTransfers / kinsts,
                    fs.predictedSyncs / kinsts};
            }});
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"benchmark", "repl%", "comm%", "core1%",
                           "xfers/kinst", "syncs/kinst"});
        const auto benches = allBenchmarks();
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto &v = res[i].values;
            out.table.addRow({benches[i], Table::fmt(v[0], 2),
                              Table::fmt(v[1], 2), Table::fmt(v[2], 1),
                              Table::fmt(v[3], 2),
                              Table::fmt(v[4], 2)});
        }
        return out;
    };
    return e;
}

// ---- Fig. 4: link-latency sensitivity --------------------------------------

const std::vector<Cycle> fig4Latencies = {1, 2, 4, 8, 12, 16};

Experiment
fig4Experiment()
{
    Experiment e;
    e.name = "fig4";
    e.title = "Fig. 4: Fg-STP speedup vs link latency (medium CMP)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : sweepBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig4", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runSingle(b, p, prm.insts, seed).cycles)};
            }});
            cells.push_back({b, "fusion", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runFused(b, p, prm.insts, seed).cycles)};
            }});
            for (const Cycle lat : fig4Latencies) {
                cells.push_back(
                    {b, "fgstp-lat" + std::to_string(lat), seed,
                     [b, prm, seed, lat] {
                         const auto p = sim::mediumPreset();
                         auto cfg = p.fgstp();
                         cfg.link.latency = lat;
                         cfg.steer.commCost = static_cast<double>(
                             std::max<Cycle>(lat, 4) * 2);
                         return std::vector<double>{
                             static_cast<double>(
                                 runFgstp(b, p, cfg, prm.insts, seed)
                                     .cycles)};
                     }});
            }
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table =
            Table({"linkLatency", "fgStpSpeedup", "coreFusionRef"});
        const auto benches = sweepBenchmarks();
        const std::size_t stride = 2 + fig4Latencies.size();

        std::vector<double> fusion_sp;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            fusion_sp.push_back(res[stride * i].values[0] /
                                res[stride * i + 1].values[0]);
        }
        const double fusion_geo = geomeanRatio(fusion_sp);

        for (std::size_t l = 0; l < fig4Latencies.size(); ++l) {
            std::vector<double> sp;
            for (std::size_t i = 0; i < benches.size(); ++i) {
                sp.push_back(res[stride * i].values[0] /
                             res[stride * i + 2 + l].values[0]);
            }
            out.table.addRow({std::to_string(fig4Latencies[l]),
                              Table::fmt(geomeanRatio(sp)),
                              Table::fmt(fusion_geo)});
        }
        out.headline = {{"coreFusionGeomeanSpeedup", fusion_geo}};
        return out;
    };
    return e;
}

// ---- Fig. 5: partition-window sensitivity ----------------------------------

const std::vector<std::uint32_t> fig5Windows = {32, 64, 128, 256, 512,
                                                1024};

Experiment
fig5Experiment()
{
    Experiment e;
    e.name = "fig5";
    e.title =
        "Fig. 5: Fg-STP speedup vs partition window (medium CMP)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : sweepBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig5", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runSingle(b, p, prm.insts, seed).cycles)};
            }});
            for (const std::uint32_t win : fig5Windows) {
                cells.push_back(
                    {b, "fgstp-win" + std::to_string(win), seed,
                     [b, prm, seed, win] {
                         const auto p = sim::mediumPreset();
                         auto cfg = p.fgstp();
                         cfg.windowSize = win;
                         return std::vector<double>{
                             static_cast<double>(
                                 runFgstp(b, p, cfg, prm.insts, seed)
                                     .cycles)};
                     }});
            }
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"window", "fgStpSpeedup"});
        const auto benches = sweepBenchmarks();
        const std::size_t stride = 1 + fig5Windows.size();
        for (std::size_t wi = 0; wi < fig5Windows.size(); ++wi) {
            std::vector<double> sp;
            for (std::size_t i = 0; i < benches.size(); ++i) {
                sp.push_back(res[stride * i].values[0] /
                             res[stride * i + 1 + wi].values[0]);
            }
            out.table.addRow({std::to_string(fig5Windows[wi]),
                              Table::fmt(geomeanRatio(sp))});
        }
        return out;
    };
    return e;
}

// ---- Fig. 6: feature ablation ----------------------------------------------

struct AblationVariant
{
    const char *label;
    void (*apply)(part::FgstpConfig &);
};

const std::vector<AblationVariant> fig6Variants = {
    {"full", [](part::FgstpConfig &) {}},
    {"no-replication",
     [](part::FgstpConfig &c) { c.replication = false; }},
    {"no-mem-spec",
     [](part::FgstpConfig &c) { c.memSpeculation = false; }},
    {"no-shared-pred",
     [](part::FgstpConfig &c) { c.sharedPrediction = false; }},
    {"branch-repl",
     [](part::FgstpConfig &c) { c.replicateBranches = true; }},
    {"none",
     [](part::FgstpConfig &c) {
         c.replication = false;
         c.memSpeculation = false;
     }},
};

Experiment
fig6Experiment()
{
    Experiment e;
    e.name = "fig6";
    e.title = "Fig. 6: Fg-STP feature ablation (medium CMP)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : sweepBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig6", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runSingle(b, p, prm.insts, seed).cycles)};
            }});
            for (const auto &var : fig6Variants) {
                cells.push_back(
                    {b, var.label, seed,
                     [b, prm, seed, apply = var.apply] {
                         const auto p = sim::mediumPreset();
                         auto cfg = p.fgstp();
                         apply(cfg);
                         return std::vector<double>{
                             static_cast<double>(
                                 runFgstp(b, p, cfg, prm.insts, seed)
                                     .cycles)};
                     }});
            }
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"variant", "fgStpSpeedup"});
        const auto benches = sweepBenchmarks();
        const std::size_t stride = 1 + fig6Variants.size();
        for (std::size_t vi = 0; vi < fig6Variants.size(); ++vi) {
            std::vector<double> sp;
            for (std::size_t i = 0; i < benches.size(); ++i) {
                sp.push_back(res[stride * i].values[0] /
                             res[stride * i + 1 + vi].values[0]);
            }
            const double g = geomeanRatio(sp);
            out.table.addRow({fig6Variants[vi].label, Table::fmt(g)});
            out.headline.emplace_back(
                std::string("speedup.") + fig6Variants[vi].label, g);
        }
        return out;
    };
    return e;
}

// ---- Fig. 7: memory-dependence speculation ---------------------------------

Experiment
fig7Experiment()
{
    Experiment e;
    e.name = "fig7";
    e.title = "Fig. 7: cross-core memory speculation (medium CMP)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig7", b, "medium");
            cells.push_back({b, "fgstp", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                const auto r =
                    runFgstpFull(b, p, p.fgstp(), prm.insts, seed);
                const double kinsts =
                    std::max(1.0, r.sample.instructions / 1000.0);
                const auto &fs = r.machine->fgstpStats();
                const double squashes =
                    static_cast<double>(
                        r.machine->coreStats(0).squashes +
                        r.machine->coreStats(1).squashes) /
                    2.0;
                return std::vector<double>{
                    fs.crossViolations / kinsts, squashes / kinsts,
                    fs.predictedSyncs / kinsts,
                    static_cast<double>(r.sample.cycles)};
            }});
            cells.push_back({b, "fgstp-conservative", seed,
                [b, prm, seed] {
                    const auto p = sim::mediumPreset();
                    auto cfg = p.fgstp();
                    cfg.memSpeculation = false;
                    return std::vector<double>{static_cast<double>(
                        runFgstp(b, p, cfg, prm.insts, seed).cycles)};
                }});
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"benchmark", "viol/kinst", "squash/kinst",
                           "syncs/kinst", "cons/spec"});
        const auto benches = allBenchmarks();
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto &spec = res[2 * i].values;
            const double cons_cycles = res[2 * i + 1].values[0];
            out.table.addRow({benches[i], Table::fmt(spec[0], 3),
                              Table::fmt(spec[1], 3),
                              Table::fmt(spec[2], 3),
                              Table::fmt(cons_cycles / spec[3])});
        }
        return out;
    };
    return e;
}

// ---- Fig. 8: coupled cores vs one big core ---------------------------------

Experiment
fig8Experiment()
{
    Experiment e;
    e.name = "fig8";
    e.title = "Fig. 8: coupled 2-core schemes vs one big core "
              "(normalized to one medium core)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig8", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runSingle(b, p, prm.insts, seed).cycles)};
            }});
            cells.push_back({b, "big", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runSingleWithCore(b, sim::bigCoreConfig(), p,
                                      prm.insts, seed)
                        .cycles)};
            }});
            cells.push_back({b, "fusion", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runFused(b, p, prm.insts, seed).cycles)};
            }});
            cells.push_back({b, "fgstp", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runFgstp(b, p, prm.insts, seed).cycles)};
            }});
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table =
            Table({"benchmark", "bigCore", "coreFusion", "fgStp"});
        const auto benches = allBenchmarks();
        std::vector<double> sp_big, sp_fused, sp_stp;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const double base = res[4 * i].values[0];
            const double b = base / res[4 * i + 1].values[0];
            const double f = base / res[4 * i + 2].values[0];
            const double s = base / res[4 * i + 3].values[0];
            sp_big.push_back(b);
            sp_fused.push_back(f);
            sp_stp.push_back(s);
            out.table.addRow({benches[i], Table::fmt(b), Table::fmt(f),
                              Table::fmt(s)});
        }
        const double gb = geomeanRatio(sp_big);
        const double gf = geomeanRatio(sp_fused);
        const double gs = geomeanRatio(sp_stp);
        out.table.addRow({"GEOMEAN", Table::fmt(gb), Table::fmt(gf),
                          Table::fmt(gs)});
        out.headline = {{"bigCoreGeomeanSpeedup", gb},
                        {"coreFusionGeomeanSpeedup", gf},
                        {"fgstpGeomeanSpeedup", gs}};
        return out;
    };
    return e;
}

// ---- Fig. 9: partitioning granularity --------------------------------------

const std::vector<std::uint32_t> fig9Chunks = {8, 32, 128, 512};

Experiment
fig9Experiment()
{
    Experiment e;
    e.name = "fig9";
    e.title = "Fig. 9: partitioning granularity (medium CMP)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : sweepBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig9", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                return std::vector<double>{static_cast<double>(
                    runSingle(b, p, prm.insts, seed).cycles)};
            }});
            auto fgstp_cell = [&](const std::string &label,
                                  std::uint32_t chunk) {
                cells.push_back({b, label, seed,
                    [b, prm, seed, chunk] {
                        const auto p = sim::mediumPreset();
                        auto cfg = p.fgstp();
                        if (chunk) {
                            cfg.granularity = part::Granularity::Chunk;
                            cfg.chunkSize = chunk;
                        }
                        const auto r = runFgstpFull(b, p, cfg,
                                                    prm.insts, seed);
                        return std::vector<double>{
                            static_cast<double>(r.sample.cycles),
                            r.machine->partitionStats().commRate()};
                    }});
            };
            fgstp_cell("fine-grain", 0);
            for (const std::uint32_t chunk : fig9Chunks)
                fgstp_cell("chunk-" + std::to_string(chunk), chunk);
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"partitioning", "speedup", "comm%"});
        const auto benches = sweepBenchmarks();
        const std::size_t num_cfgs = 1 + fig9Chunks.size();
        const std::size_t stride = 1 + num_cfgs;

        std::vector<std::string> labels = {"fine-grain (Fg-STP)"};
        for (const std::uint32_t chunk : fig9Chunks)
            labels.push_back("chunk-" + std::to_string(chunk));

        for (std::size_t c = 0; c < num_cfgs; ++c) {
            std::vector<double> sp;
            double comm = 0.0;
            for (std::size_t i = 0; i < benches.size(); ++i) {
                const double base = res[stride * i].values[0];
                const auto &v = res[stride * i + 1 + c].values;
                sp.push_back(base / v[0]);
                comm += v[1];
            }
            out.table.addRow(
                {labels[c], Table::fmt(geomeanRatio(sp)),
                 Table::fmt(100.0 * comm / benches.size(), 2)});
        }
        out.footer =
            "expected shape: fine-grain on top; small chunks drown in "
            "communication, large chunks idle one core.";
        return out;
    };
    return e;
}

// ---- Fig. 10: energy -------------------------------------------------------

template <typename Machine>
std::vector<double>
measureEnergy(Machine &m, const sim::RunResult &r, double width_factor,
              bool fgstp_part, bool fusion_steer,
              std::uint64_t link_transfers = 0)
{
    std::vector<const core::CoreStats *> cs;
    for (unsigned i = 0; i < m.numCores(); ++i)
        cs.push_back(&m.coreStats(i));
    auto act = power::gatherActivity(cs.data(), m.numCores(),
                                     m.memory().stats(), r.cycles,
                                     r.instructions, width_factor);
    act.fgstpPartitioning = fgstp_part;
    act.fusionSteering = fusion_steer;
    act.linkTransfers = link_transfers;
    const auto e = power::estimateEnergy(act);
    return {e.epi, e.edp};
}

Experiment
fig10Experiment()
{
    Experiment e;
    e.name = "fig10";
    e.title = "Fig. 10: energy per instruction (nJ) and energy-delay, "
              "medium design point";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "fig10", b, "medium");
            cells.push_back({b, "single", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                workload::SyntheticWorkload w(
                    workload::profileByName(b), seed);
                sim::SingleCoreMachine m(p.core, p.memory, w);
                const auto r = m.run(prm.insts);
                return measureEnergy(m, r, 1.0, false, false);
            }});
            cells.push_back({b, "big", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                workload::SyntheticWorkload w(
                    workload::profileByName(b), seed);
                sim::SingleCoreMachine m(sim::bigCoreConfig(),
                                         p.memory, w);
                const auto r = m.run(prm.insts);
                return measureEnergy(m, r, 2.0, false, false);
            }});
            cells.push_back({b, "fusion", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                workload::SyntheticWorkload w(
                    workload::profileByName(b), seed);
                fusion::FusedMachine m(p.core, p.memory, w,
                                       p.fusionOverheads);
                const auto r = m.run(prm.insts);
                return measureEnergy(m, r, 2.0, false, true);
            }});
            cells.push_back({b, "fgstp", seed, [b, prm, seed] {
                const auto p = sim::mediumPreset();
                workload::SyntheticWorkload w(
                    workload::profileByName(b), seed);
                part::FgstpMachine m(p.core, p.memory, p.fgstp(), w);
                const auto r = m.run(prm.insts);
                return measureEnergy(m, r, 1.0, true, false,
                                     m.fgstpStats().valueTransfers);
            }});
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"benchmark", "1core", "bigCore", "fusion",
                           "fgStp", "fgStpEDP/1coreEDP"});
        const auto benches = allBenchmarks();
        std::vector<double> epi1, epib, epif, epis, edr;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            const auto &e1 = res[4 * i].values;
            const auto &e2 = res[4 * i + 1].values;
            const auto &e3 = res[4 * i + 2].values;
            const auto &e4 = res[4 * i + 3].values;
            epi1.push_back(e1[0]);
            epib.push_back(e2[0]);
            epif.push_back(e3[0]);
            epis.push_back(e4[0]);
            edr.push_back(e4[1] / e1[1]);
            out.table.addRow({benches[i], Table::fmt(e1[0], 2),
                              Table::fmt(e2[0], 2),
                              Table::fmt(e3[0], 2),
                              Table::fmt(e4[0], 2),
                              Table::fmt(e4[1] / e1[1])});
        }
        out.table.addRow({"GEOMEAN", Table::fmt(geomeanRatio(epi1), 2),
                          Table::fmt(geomeanRatio(epib), 2),
                          Table::fmt(geomeanRatio(epif), 2),
                          Table::fmt(geomeanRatio(epis), 2),
                          Table::fmt(geomeanRatio(edr))});
        out.headline = {{"fgstpEdpVsSingleGeomean", geomeanRatio(edr)}};
        return out;
    };
    return e;
}

// ---- steer_sweep: offline steering-weight fit ------------------------------

/** Workload instances each candidate is scored over, per benchmark. */
constexpr std::size_t steerSweepReps = 5;

/** One candidate weight set of the offline sweep. */
struct SteerCandidate
{
    const char *label;
    part::SteeringWeights w;
};

/**
 * The candidate grid: one-axis probes around the defaults plus a few
 * combinations the CPI-profile fit (fgstp/steering.cc) predicts for
 * communication-, commit- and memory-dominated profiles.
 */
const std::vector<SteerCandidate> &
steerCandidates()
{
    // {comm, balance, switch, affinity, crit}
    static const std::vector<SteerCandidate> c = {
        // coarse one-axis probes
        {"comm-4", {4.0, 0.4, 1.0, 0.0, 0.0}},
        {"comm-16", {16.0, 0.4, 1.0, 0.0, 0.0}},
        {"bal-0.1", {8.0, 0.1, 1.0, 0.0, 0.0}},
        {"bal-0.8", {8.0, 0.8, 1.0, 0.0, 0.0}},
        {"sticky-3", {8.0, 0.4, 3.0, 0.0, 0.0}},
        {"affin-2", {8.0, 0.4, 1.0, 2.0, 0.0}},
        {"crit-0.5", {8.0, 0.4, 1.0, 0.0, 0.5}},
        // fine one-axis probes around the defaults
        {"comm-6", {6.0, 0.4, 1.0, 0.0, 0.0}},
        {"comm-12", {12.0, 0.4, 1.0, 0.0, 0.0}},
        {"bal-0.3", {8.0, 0.3, 1.0, 0.0, 0.0}},
        {"bal-0.5", {8.0, 0.5, 1.0, 0.0, 0.0}},
        {"sticky-2", {8.0, 0.4, 2.0, 0.0, 0.0}},
        {"affin-0.5", {8.0, 0.4, 1.0, 0.5, 0.0}},
        {"affin-1", {8.0, 0.4, 1.0, 1.0, 0.0}},
        {"crit-0.2", {8.0, 0.4, 1.0, 0.0, 0.2}},
        // combinations the CPI-profile fit predicts
        {"comm16-sticky3", {16.0, 0.4, 3.0, 0.0, 0.0}},
        {"affin1.5-crit0.4", {8.0, 0.4, 1.0, 1.5, 0.4}},
        {"affin0.8-crit0.2", {8.0, 0.4, 1.0, 0.8, 0.2}},
        {"bal0.6-crit0.3", {8.0, 0.6, 1.0, 0.0, 0.3}},
        {"comm6-affin0.5", {6.0, 0.4, 1.0, 0.5, 0.0}},
    };
    return c;
}

/** Formats a weight set as a C++ TunedEntry initializer line. */
std::string
tunedEntryLine(const std::string &bench, const part::SteeringWeights &w)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"%s\", {%g, %g, %g, %g, %g}},", bench.c_str(),
                  w.commCost, w.balance, w.switchCost, w.affinity,
                  w.critPath);
    return buf;
}

Experiment
steerSweepExperiment()
{
    Experiment e;
    e.name = "steer_sweep";
    e.title = "Steering-weight sweep + CPI-profile fit, medium design "
              "point (feeds the tuned table in fgstp/steering.cc)";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        // Rep 0 is the *evaluation instance*: the exact (bench, seed)
        // workload fig1 runs, so the sweep is profile-guided tuning of
        // the workload the tuned table will actually face — the same
        // offline-profiling setting the paper's per-benchmark
        // partitioning assumes. Reps 1.. are held-out instances of the
        // same benchmark; the reduce step reports how often the
        // winning candidate also beats the defaults on those, because
        // per-instance optima vary far more than per-benchmark ones
        // and a win that does not generalize should be read as
        // instance-specific, not as a property of the benchmark.
        for (const auto &b : allBenchmarks()) {
            for (unsigned rep = 0; rep < steerSweepReps; ++rep) {
                const std::string cfg_tag =
                    "medium:r" + std::to_string(rep);
                const auto seed =
                    rep == 0
                        ? jobSeed(prm.seed, "fig1", b, "medium")
                        : jobSeed(prm.seed, "steer_sweep", b, cfg_tag);
                cells.push_back({b, "single:r" + std::to_string(rep),
                    seed, [b, prm, seed] {
                        const auto p = sim::mediumPreset();
                        return std::vector<double>{static_cast<double>(
                            runSingle(b, p, prm.insts, seed).cycles)};
                    }});
                // Default-weights run, instrumented: cycles plus the
                // CPI profile the offline fit consumes.
                cells.push_back({b, "default:r" + std::to_string(rep),
                    seed, [b, prm, seed] {
                        const auto p = sim::mediumPreset();
                        workload::SyntheticWorkload w(
                            workload::profileByName(b), seed);
                        part::FgstpMachine m(p.core, p.memory,
                                             p.fgstp(), w);
                        obs::MonitorConfig mc;
                        mc.cpiStack = true;
                        m.enableObservability(mc);
                        const auto r = m.run(prm.insts);
                        obs::CpiStack stacks[2];
                        for (unsigned c = 0; c < 2; ++c)
                            stacks[c] = m.monitor(c)->cpi();
                        const auto prof = part::profileFrom(stacks, 2);
                        return std::vector<double>{
                            static_cast<double>(r.cycles),
                            prof.crossCoreWait, prof.busContention,
                            prof.commitGating, prof.memory};
                    }});
                for (const auto &cand : steerCandidates()) {
                    cells.push_back({b,
                        std::string(cand.label) + ":r" +
                            std::to_string(rep),
                        seed, [b, prm, seed, &cand] {
                            const auto p = sim::mediumPreset();
                            auto cfg = p.fgstp();
                            cfg.steer = cand.w;
                            return std::vector<double>{
                                static_cast<double>(
                                    runFgstp(b, p, cfg, prm.insts,
                                             seed)
                                        .cycles)};
                        }});
                }
            }
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table =
            Table({"benchmark", "xwait", "commit", "mem", "spDefault",
                   "spBest", "best", "holdout", "fitWeights"});
        const auto benches = allBenchmarks();
        const auto &cands = steerCandidates();
        const std::size_t rep_stride = 2 + cands.size();
        const std::size_t bench_stride = steerSweepReps * rep_stride;
        std::vector<double> sp_default, sp_best;
        std::string tuned_lines;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            // The winner is picked on the evaluation instance (rep 0);
            // the held-out reps only report how well that choice
            // generalizes to other instances of the same benchmark.
            std::vector<double> def_r(steerSweepReps, 1.0);
            std::vector<std::vector<double>> cand_r(
                cands.size(), std::vector<double>(steerSweepReps, 1.0));
            part::CpiProfile prof;
            for (std::size_t r = 0; r < steerSweepReps; ++r) {
                const std::size_t at = bench_stride * i + rep_stride * r;
                const double base = res[at].values[0];
                const auto &prof_cell = res[at + 1].values;
                def_r[r] = base / prof_cell[0];
                prof.crossCoreWait +=
                    prof_cell[1] / steerSweepReps;
                prof.busContention +=
                    prof_cell[2] / steerSweepReps;
                prof.commitGating +=
                    prof_cell[3] / steerSweepReps;
                prof.memory += prof_cell[4] / steerSweepReps;
                for (std::size_t k = 0; k < cands.size(); ++k)
                    cand_r[k][r] = base / res[at + 2 + k].values[0];
            }
            const double def_sp = def_r[0];
            double best_sp = def_sp;
            std::string best_label = "default";
            std::size_t best_k = cands.size();
            for (std::size_t k = 0; k < cands.size(); ++k) {
                if (cand_r[k][0] > best_sp) {
                    best_sp = cand_r[k][0];
                    best_label = cands[k].label;
                    best_k = k;
                }
            }
            sp_default.push_back(def_sp);
            sp_best.push_back(best_sp);

            std::string holdout = "-";
            if (best_k < cands.size()) {
                unsigned wins = 0;
                for (std::size_t r = 1; r < steerSweepReps; ++r)
                    wins += cand_r[best_k][r] > def_r[r];
                holdout = std::to_string(wins) + "/" +
                          std::to_string(steerSweepReps - 1);
            }

            const auto fit = part::fitSteeringWeights(
                prof, part::SteeringWeights{});
            out.table.addRow(
                {benches[i], Table::fmt(prof.crossCoreWait),
                 Table::fmt(prof.commitGating), Table::fmt(prof.memory),
                 Table::fmt(def_sp), Table::fmt(best_sp), best_label,
                 holdout, fit.describe()});

            // Bake a tuned entry only for a clear on-instance win;
            // ties and sub-noise differences stay on the defaults.
            if (best_k < cands.size() && best_sp > def_sp * 1.005)
                tuned_lines += "  " +
                               tunedEntryLine(benches[i],
                                              cands[best_k].w) +
                               "\n";
        }
        const double gd = geomeanRatio(sp_default);
        const double gb = geomeanRatio(sp_best);
        out.table.addRow({"GEOMEAN", "-", "-", "-", Table::fmt(gd),
                          Table::fmt(gb), "-", "-", "-"});
        out.headline = {{"defaultGeomeanSpeedup", gd},
                        {"bestGeomeanSpeedup", gb},
                        {"bestVsDefault", gb / gd}};
        out.footer =
            "tuned-table entries (paste into "
            "src/fgstp/steering.cc tunedSteeringTable):\n" +
            (tuned_lines.empty()
                 ? std::string("  (none beat the defaults)")
                 : tuned_lines);
        return out;
    };
    return e;
}

// ---- predictor substrate ---------------------------------------------------

const std::vector<std::string> predictorKinds = {"bimodal", "gshare",
                                                 "tournament",
                                                 "perceptron"};

Experiment
predictorsExperiment()
{
    Experiment e;
    e.name = "predictors";
    e.title =
        "Predictor comparison: conditional misprediction rate (%)";
    e.preset = "-";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        // 1.5x the machine-run budget: predictor-only streaming is
        // far cheaper than cycle simulation (60k at the default).
        const std::uint64_t insts = prm.insts + prm.insts / 2;
        for (const auto &b : allBenchmarks()) {
            const auto seed = jobSeed(prm.seed, "predictors", b, "-");
            for (const auto &kind : predictorKinds) {
                cells.push_back({b, kind, seed,
                    [b, kind, seed, insts] {
                        auto p = branch::makeDirectionPredictor(
                            kind.c_str(), 16384, 12);
                        workload::SyntheticWorkload w(
                            workload::profileByName(b), seed);
                        trace::DynInst d;
                        std::uint64_t lookups = 0, wrong = 0;
                        for (std::uint64_t i = 0;
                             i < insts && w.next(d); ++i) {
                            if (!d.isCondBranch())
                                continue;
                            ++lookups;
                            wrong += p->lookup(d.pc) != d.taken;
                            p->update(d.pc, d.taken);
                        }
                        return std::vector<double>{
                            lookups ? 100.0 * wrong / lookups : 0.0};
                    }});
            }
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        std::vector<std::string> headers = {"benchmark"};
        for (const auto &kind : predictorKinds)
            headers.push_back(kind);
        out.table = Table(headers);
        const auto benches = allBenchmarks();
        const std::size_t stride = predictorKinds.size();
        for (std::size_t i = 0; i < benches.size(); ++i) {
            std::vector<std::string> row = {benches[i]};
            for (std::size_t k = 0; k < stride; ++k)
                row.push_back(
                    Table::fmt(res[stride * i + k].values[0], 2));
            out.table.addRow(row);
        }
        return out;
    };
    return e;
}

// ---- fault-injection campaign ----------------------------------------------

/** Benchmarks swept by the injection campaign: one control-heavy, one
 *  memory-bound, one compute-regular — enough spread to show how the
 *  recovery cost scales with the workload's cross-core traffic. */
const std::vector<std::string> injectSweepBenches = {"gcc", "mcf",
                                                     "libquantum"};

/** Fault rates per class, log-spaced up to the stress point. */
const std::vector<double> injectSweepRates = {1e-4, 1e-3, 1e-2, 5e-2};

/** Finds one named recovery counter; 0 when the machine has none. */
double
recoveryCounter(
    const std::vector<std::pair<std::string, std::uint64_t>> &counters,
    std::string_view name)
{
    for (const auto &[k, v] : counters) {
        if (k == name)
            return static_cast<double>(v);
    }
    return 0.0;
}

Experiment
injectSweepExperiment()
{
    Experiment e;
    e.name = "inject_sweep";
    e.title = "Fault-injection campaign: IPC degradation and recovery "
              "cost per fault class and rate, medium design point";
    e.preset = "medium";
    e.makeCells = [](const RunParams &prm) {
        std::vector<Cell> cells;
        for (const auto &b : injectSweepBenches) {
            const auto seed =
                jobSeed(prm.seed, "inject_sweep", b, "medium");
            // The rate=0 anchor: no injector is ever armed, so this
            // cell is byte-identical to an uninjected run of the same
            // (bench, seed) and pins the degradation curves' origin.
            cells.push_back({b, "baseline:rate=0", seed,
                [b, prm, seed] {
                    const auto p = sim::mediumPreset();
                    workload::SyntheticWorkload w(
                        workload::profileByName(b), seed);
                    part::FgstpMachine m(p.core, p.memory, p.fgstp(),
                                         w);
                    auto golden =
                        std::make_unique<workload::SyntheticWorkload>(
                            workload::profileByName(b), seed);
                    harden::CommitChecker checker(std::move(golden),
                                                  b + "/baseline");
                    m.attachCommitChecker(&checker);
                    const auto r = m.run(prm.insts);
                    return std::vector<double>{
                        static_cast<double>(r.cycles),
                        static_cast<double>(r.instructions),
                        0.0, 0.0, 0.0, 0.0, 0.0};
                }});
            for (const auto &cls : harden::campaignClasses()) {
                for (const double rate : injectSweepRates) {
                    char tag[64];
                    std::snprintf(tag, sizeof(tag), "%s:rate=%g",
                                  cls.c_str(), rate);
                    cells.push_back({b, tag, seed,
                        [b, prm, seed, cls, rate] {
                            const auto p = sim::mediumPreset();
                            workload::SyntheticWorkload w(
                                workload::profileByName(b), seed);
                            part::FgstpMachine m(p.core, p.memory,
                                                 p.fgstp(), w);
                            auto golden = std::make_unique<
                                workload::SyntheticWorkload>(
                                workload::profileByName(b), seed);
                            harden::CommitChecker checker(
                                std::move(golden), b + "/" + cls);
                            m.attachCommitChecker(&checker);
                            // Seeded per cell, mirroring the per-cell
                            // reseed in setCellHardening: every
                            // (bench, class, rate) point draws its own
                            // deterministic fault stream.
                            m.enableFaultInjection(
                                harden::campaignPlan(cls, rate, seed));
                            const auto r = m.run(prm.insts);
                            const auto c = m.recoveryCounters();
                            const double injected =
                                recoveryCounter(c,
                                    "inject.storeSetDrops") +
                                recoveryCounter(c, "inject.steerFlips") +
                                recoveryCounter(c,
                                    "inject.partMapFlips") +
                                recoveryCounter(c,
                                    "inject.steerRegFlips") +
                                recoveryCounter(c,
                                    "inject.branchFlips") +
                                recoveryCounter(c, "inject.linkDrops") +
                                recoveryCounter(c,
                                    "recover.valueChecksumHits");
                            return std::vector<double>{
                                static_cast<double>(r.cycles),
                                static_cast<double>(r.instructions),
                                injected,
                                recoveryCounter(c,
                                    "recover.linkRetransmits"),
                                recoveryCounter(c,
                                    "recover.partMapSquashes"),
                                recoveryCounter(c,
                                    "recover.steerRegRepartitions"),
                                recoveryCounter(c,
                                    "recover.valueChecksumHits")};
                        }});
                }
            }
        }
        return cells;
    };
    e.reduce = [](const RunParams &,
                  const std::vector<CellResult> &res) {
        ExperimentOutput out;
        out.table = Table({"benchmark", "class", "rate", "ipc",
                           "degradation", "injected", "retransmits",
                           "squashes", "repartitions", "status"});
        const auto &classes = harden::campaignClasses();
        const std::size_t grid =
            classes.size() * injectSweepRates.size();
        const std::size_t bench_stride = 1 + grid;
        double worst_ratio = 1.0;
        std::uint64_t failed = 0, recovered_total = 0;
        std::uint64_t monotone_violations = 0;
        for (std::size_t i = 0; i < injectSweepBenches.size(); ++i) {
            const auto &b = injectSweepBenches[i];
            const CellResult &base = res[bench_stride * i];
            const double base_ipc =
                base.ok && base.values[0] > 0
                    ? base.values[1] / base.values[0] : 0.0;
            out.table.addRow({b, "baseline", "0", Table::fmt(base_ipc),
                              "-", "0", "0", "0", "0",
                              base.ok ? "ok" : "failed"});
            failed += !base.ok;
            for (std::size_t k = 0; k < classes.size(); ++k) {
                // Recovery events should not shrink as the rate grows:
                // each rate point injects from its own stream, but a
                // denser stream strictly adds corruption opportunities
                // over a fixed instruction count.
                double prev_cost = -1.0;
                for (std::size_t ri = 0; ri < injectSweepRates.size();
                     ++ri) {
                    const CellResult &r =
                        res[bench_stride * i + 1 +
                            k * injectSweepRates.size() + ri];
                    char ratebuf[24];
                    std::snprintf(ratebuf, sizeof(ratebuf), "%g",
                                  injectSweepRates[ri]);
                    if (!r.ok) {
                        // An unrecoverable cell: the typed error is
                        // recorded on the row, never a silent wrong
                        // answer (every cell runs checker-attached).
                        ++failed;
                        out.table.addRow({b, classes[k], ratebuf, "-",
                                          "-", "-", "-", "-", "-",
                                          "failed"});
                        prev_cost = -1.0;
                        continue;
                    }
                    const double ipc =
                        r.values[0] > 0
                            ? r.values[1] / r.values[0] : 0.0;
                    const double ratio =
                        base_ipc > 0 ? ipc / base_ipc : 1.0;
                    worst_ratio = std::min(worst_ratio, ratio);
                    const double cost =
                        r.values[3] + r.values[4] + r.values[5];
                    recovered_total +=
                        static_cast<std::uint64_t>(cost);
                    monotone_violations +=
                        prev_cost >= 0.0 && cost < prev_cost;
                    prev_cost = cost;
                    out.table.addRow(
                        {b, classes[k], ratebuf, Table::fmt(ipc),
                         pct(ratio - 1.0), Table::fmt(r.values[2], 0),
                         Table::fmt(r.values[3], 0),
                         Table::fmt(r.values[4], 0),
                         Table::fmt(r.values[5], 0), "ok"});
                }
            }
        }
        out.headline = {
            {"worstIpcRatio", worst_ratio},
            {"failedCells", static_cast<double>(failed)},
            {"recoveredTotal", static_cast<double>(recovered_total)},
            {"monotoneViolations",
             static_cast<double>(monotone_violations)}};
        out.footer =
            "every cell runs under its own golden-model commit "
            "checker; failed rows are crash-isolated unrecoverable "
            "cells (typed errors), never silent corruption";
        return out;
    };
    return e;
}

} // namespace

// ---- registry --------------------------------------------------------------

const std::vector<Experiment> &
allExperiments()
{
    static const std::vector<Experiment> experiments = {
        table1Experiment(),
        table2Experiment(),
        speedupExperiment(
            "fig1", "Fig. 1: speedup over 1 core, medium 2-core CMP",
            "medium", 1.18,
            "Fg-STP beats Core Fusion by ~18% on the medium CMP"),
        speedupExperiment(
            "fig2", "Fig. 2: speedup over 1 core, small 2-core CMP",
            "small", 1.07,
            "Fg-STP beats Core Fusion by ~7% on the small CMP"),
        fig3Experiment(),
        fig4Experiment(),
        fig5Experiment(),
        fig6Experiment(),
        fig7Experiment(),
        fig8Experiment(),
        fig9Experiment(),
        fig10Experiment(),
        predictorsExperiment(),
        steerSweepExperiment(),
        injectSweepExperiment(),
    };
    return experiments;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &e : allExperiments()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

// ---- running ---------------------------------------------------------------

std::future<CellResult>
submitCellJob(ThreadPool &pool, const std::string &experiment,
              Cell &cell, const RunParams &params)
{
    serve::CellIdentity id;
    id.experiment = experiment;
    id.bench = cell.bench;
    id.machine = cell.machine;
    id.seed = cell.seed;
    // Placement hints for the Sts scheduler (no-ops under Fifo, never
    // part of the result): same-(bench, seed) cells share a worker —
    // the one whose core holds their generated prefix warm — and
    // cells the wall-time model already knows to be long poles start
    // in the high lane so they never anchor the sweep's tail.
    SchedHint hint;
    hint.affinity = hash::mix64(
        hash::fnv1aField(hash::fnvOffsetBasis, cell.bench) ^ cell.seed);
    hint.hasAffinity = true;
    hint.highPriority =
        CellTimeModel::instance().longPole(cell.bench, cell.machine);
    auto future = pool.submit([fn = std::move(cell.fn),
                               id = std::move(id), cache = params.cache,
                               progress = params.progress] {
        if (cache) {
            // Replay the stored outcome — including the original wall
            // time and the observability sidecar records, so a warm
            // rerun's job rows AND its BENCH_cpistack.json /
            // BENCH_sampling.json are byte-identical to the run that
            // populated the cache. A hit whose sidecar fails to decode
            // falls through and resimulates instead.
            if (auto hit = cache->lookup(id);
                hit && replayCellSidecar(hit->sidecar)) {
                CellResult r;
                r.values = std::move(hit->values);
                r.wallTimeMs = hit->wallTimeMs;
                r.ok = hit->ok;
                r.error = std::move(hit->error);
                CellTimeModel::instance().record(id.bench, id.machine,
                                                 r.wallTimeMs);
                if (progress)
                    progress->tick(true);
                return r;
            }
        }
        const auto t0 = Clock::now();
        CellResult r;
        // Crash isolation: a throwing cell (watchdog, checker,
        // unrecoverable fault, I/O) becomes a failed result, not
        // a dead 13-experiment sweep.
        beginCellSidecarCapture();
        try {
            r.values = fn();
        } catch (const std::exception &ex) {
            r.ok = false;
            r.error = ex.what();
        } catch (...) {
            r.ok = false;
            r.error = "unknown exception";
        }
        // Whatever the cell appended to the collectors before a throw
        // is exactly what a cold run would have left there, so partial
        // sidecars of failed cells cache (and replay) faithfully.
        auto sidecar = takeCellSidecarLines();
        r.wallTimeMs = msSince(t0);
        CellTimeModel::instance().record(id.bench, id.machine,
                                         r.wallTimeMs);
        if (cache) {
            // Failed cells are cached too: the failures are as
            // deterministic as the results. A cache-write failure must
            // not fail a successfully-simulated cell, though.
            try {
                serve::CachedCell c;
                c.values = r.values;
                c.wallTimeMs = r.wallTimeMs;
                c.ok = r.ok;
                c.error = r.error;
                c.sidecar = std::move(sidecar);
                cache->store(id, c);
            } catch (const SimError &) {
            }
        }
        if (progress)
            progress->tick(false);
        return r;
    }, hint);
    cell.fn = nullptr; // consumed
    return future;
}

ScheduledExperiment
scheduleExperiment(const Experiment &e, const RunParams &params,
                   ThreadPool &pool)
{
    ScheduledExperiment s;
    s.experiment = &e;
    s.cells = e.makeCells(params);
    if (params.progress)
        params.progress->addTotal(s.cells.size());
    s.futures.reserve(s.cells.size());
    for (auto &c : s.cells)
        s.futures.push_back(submitCellJob(pool, e.name, c, params));
    return s;
}

ExperimentRun
collectExperiment(ScheduledExperiment &&scheduled,
                  const RunParams &params)
{
    const auto t0 = Clock::now();
    ExperimentRun run;
    run.experiment = scheduled.experiment;
    run.cells = std::move(scheduled.cells);

    std::vector<CellResult> results;
    results.reserve(scheduled.futures.size());
    for (auto &f : scheduled.futures)
        results.push_back(f.get()); // exceptions were captured per cell

    run.results = results;
    finalizeRunOutput(run, params);
    run.wallTimeMs = msSince(t0);
    return run;
}

void
finalizeRunOutput(ExperimentRun &run, const RunParams &params)
{
    if (run.ok()) {
        run.output = run.experiment->reduce(params, run.results);
    } else {
        // Reducers index positional metric vectors that failed cells
        // lack; degrade to an error summary instead.
        run.output.footer =
            std::to_string(run.failedCells()) + " of " +
            std::to_string(run.results.size()) +
            " cells failed; table not reduced (see the per-job "
            "status list).";
    }
}

ExperimentRun
runExperiment(const Experiment &e, const RunParams &params,
              ThreadPool &pool)
{
    const auto t0 = Clock::now();
    auto run = collectExperiment(scheduleExperiment(e, params, pool),
                                 params);
    run.wallTimeMs = msSince(t0);
    return run;
}

// ---- rendering -------------------------------------------------------------

void
renderText(std::ostream &os, const ExperimentRun &run, bool csv)
{
    os << "== " << run.experiment->title << " ==\n";
    run.output.table.render(os, csv);
    if (!run.output.footer.empty())
        os << "\n" << run.output.footer << "\n";
    if (!run.ok()) {
        for (std::size_t i = 0; i < run.results.size(); ++i) {
            if (run.results[i].ok)
                continue;
            os << "FAILED " << run.cells[i].bench << "/"
               << run.cells[i].machine << " (seed "
               << run.cells[i].seed << "): " << run.results[i].error
               << "\n";
        }
    }
}

namespace
{

/**
 * Emits a table cell: bare JSON number when the formatted string is
 * itself a finite decimal literal, quoted string otherwise.
 */
std::string
jsonCell(const std::string &cell)
{
    if (cell.empty())
        return json::quote(cell);
    const char *begin = cell.c_str();
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    const bool fully_numeric = end == begin + cell.size();
    // Reject strtod-accepted spellings that are not JSON numbers
    // (inf, nan, hex floats, leading '+').
    const bool plain =
        cell.find_first_not_of("0123456789.eE+-") == std::string::npos &&
        cell[0] != '+';
    if (fully_numeric && plain && std::isfinite(v))
        return cell;
    return json::quote(cell);
}

} // namespace

void
renderJson(std::ostream &os, const ExperimentRun &run,
           const RunParams &params, unsigned pool_jobs,
           const ThreadPool *pool)
{
    const auto &e = *run.experiment;
    const auto &out = run.output;

    // Schema v3 adds only the meta.sampling block and is emitted only
    // for sampled sweeps, so full-detail output stays byte-identical
    // to schema v2 consumers.
    os << "{\n";
    os << "  \"schemaVersion\": " << (params.sampled ? 3 : 2) << ",\n";
    os << "  \"experiment\": " << json::quote(e.name) << ",\n";
    os << "  \"title\": " << json::quote(e.title) << ",\n";
    os << "  \"preset\": " << json::quote(e.preset) << ",\n";
    os << "  \"meta\": {\n";
    os << "    \"insts\": " << json::number(params.insts) << ",\n";
    os << "    \"evalSeed\": " << json::number(params.seed) << ",\n";
    // The build that produced the numbers. --merge overrides it with
    // the shard documents' stamp, so a merged report stays attributed
    // (and byte-identical) to the build that ran the shards.
    os << "    \"codeVersion\": "
       << json::quote(params.codeVersion.empty() ? codeVersion()
                                                 : params.codeVersion)
       << ",\n";
    if (params.sampled) {
        os << "    \"sampling\": {\n";
        os << "      \"mode\": \"smarts\",\n";
        os << "      \"ffInsts\": " << json::number(params.sample.ffInsts)
           << ",\n";
        os << "      \"warmupInsts\": "
           << json::number(params.sample.warmupInsts) << ",\n";
        os << "      \"measureInsts\": "
           << json::number(params.sample.measureInsts) << "\n";
        os << "    },\n";
    }
    // Like meta.sampling, meta.bus is additive and emitted only when
    // the sweep actually contends the shared bus, so bus-off reports
    // stay byte-identical to earlier consumers.
    if (params.bus.enabled) {
        os << "    \"bus\": {\n";
        os << "      \"width\": "
           << json::number(std::uint64_t{params.bus.width}) << ",\n";
        os << "      \"queueCapacity\": "
           << json::number(std::uint64_t{params.bus.queueCapacity})
           << ",\n";
        os << "      \"policy\": "
           << json::quote(params.bus.policy ==
                                  uncore::BusPolicy::FixedPriority
                              ? "priority" : "rr")
           << ",\n";
        os << "      \"nackRetryDelay\": "
           << json::number(std::uint64_t{params.bus.nackRetryDelay})
           << ",\n";
        os << "      \"maxNackRetries\": "
           << json::number(std::uint64_t{params.bus.maxNackRetries})
           << "\n";
        os << "    },\n";
    }
    // meta.coherence follows the same additive rule: emitted only
    // under the MESI directory, so flat-model reports (the default)
    // stay byte-identical to earlier consumers.
    if (params.coherence == mem::CoherenceKind::Mesi)
        os << "    \"coherence\": \"mesi\",\n";
    // meta.steering follows the same additive rule: emitted only when
    // --steer reconfigured the partitioner, so steer-off reports stay
    // byte-identical to earlier consumers.
    if (params.steer) {
        const auto &sp = params.steerSpec;
        os << "    \"steering\": {\n";
        os << "      \"mode\": "
           << json::quote(sp.adaptive ? "adaptive"
                                      : sp.tuned ? "tuned" : "fixed")
           << ",\n";
        os << "      \"weights\": "
           << json::quote(sp.weights.describe()) << "\n";
        os << "    },\n";
    }
    os << "    \"cellCount\": "
       << json::number(static_cast<std::uint64_t>(run.cells.size()))
       << ",\n";
    os << "    \"failedCells\": "
       << json::number(static_cast<std::uint64_t>(run.failedCells()))
       << ",\n";
    // Run-environment metadata shares the wallTimeMs line so a single
    // `grep -v wallTimeMs` leaves only deterministic content. The
    // scheduler and prefix-memo counters are schedule-dependent by
    // nature (docs/STATS.md), so they live here too; pool == nullptr
    // (the shard-merge path, which runs no cells) omits the scheduler
    // fields.
    os << "    \"poolJobs\": "
       << json::number(static_cast<std::uint64_t>(pool_jobs));
    if (pool) {
        const SchedStats ss = pool->schedStats();
        os << ", \"sched\": "
           << json::quote(SchedConfig::policyName(pool->policy()))
           << ", \"schedAffinityHits\": " << json::number(ss.affinityRuns)
           << ", \"schedSteals\": " << json::number(ss.steals)
           << ", \"schedPriorityRuns\": " << json::number(ss.priorityRuns);
    }
    {
        const auto ps = workload::PrefixCache::instance().stats();
        os << ", \"prefixHits\": " << json::number(ps.hits)
           << ", \"prefixMisses\": " << json::number(ps.misses)
           << ", \"prefixBytes\": " << json::number(ps.bytes);
    }
    os << ", \"wallTimeMs\": " << json::number(run.wallTimeMs) << "\n";
    os << "  },\n";

    os << "  \"columns\": [";
    const auto &headers = out.table.headerCells();
    for (std::size_t i = 0; i < headers.size(); ++i)
        os << (i ? ", " : "") << json::quote(headers[i]);
    os << "],\n";

    os << "  \"rows\": [\n";
    const auto &rows = out.table.rowCells();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "    [";
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            os << (c ? ", " : "") << jsonCell(rows[r][c]);
        os << "]" << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"headline\": {";
    for (std::size_t i = 0; i < out.headline.size(); ++i) {
        os << (i ? ", " : "") << json::quote(out.headline[i].first)
           << ": " << json::number(out.headline[i].second);
    }
    os << "},\n";

    os << "  \"paper\": [\n";
    for (std::size_t i = 0; i < e.paper.size(); ++i) {
        const auto &claim = e.paper[i];
        const double measured = headlineValue(out, claim.metric);
        os << "    {\"metric\": " << json::quote(claim.metric)
           << ", \"paper\": " << json::number(claim.expected)
           << ", \"measured\": " << json::number(measured)
           << ", \"note\": " << json::quote(claim.note) << "}"
           << (i + 1 < e.paper.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < run.cells.size(); ++i) {
        const auto &c = run.cells[i];
        const auto &r = run.results[i];
        os << "    {\"bench\": " << json::quote(c.bench)
           << ", \"machine\": " << json::quote(c.machine)
           << ", \"seed\": " << json::number(c.seed) << ",\n";
        if (r.ok) {
            os << "     \"status\": \"ok\",\n";
        } else {
            // json::quote escapes the newlines a watchdog dump or a
            // divergence report may carry, so each job row stays a
            // fixed number of physical lines.
            os << "     \"status\": \"failed\", \"error\": "
               << json::quote(r.error) << ",\n";
        }
        os << "     \"wallTimeMs\": " << json::number(r.wallTimeMs)
           << "}" << (i + 1 < run.cells.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"footer\": " << json::quote(out.footer) << "\n";
    os << "}\n";
}

int
legacyMain(const char *experiment_name, int argc, char **argv)
{
    const bool csv = wantCsv(argc, argv);
    const Experiment *e = findExperiment(experiment_name);
    if (!e)
        fatal("unknown experiment '", experiment_name, "'");

    ThreadPool pool(std::thread::hardware_concurrency());
    const auto run = runExperiment(*e, RunParams{}, pool);
    renderText(std::cout, run, csv);
    return run.ok() ? 0 : 1;
}

} // namespace fgstp::bench
