/**
 * @file
 * Fig. 7: memory-dependence speculation behaviour.
 *
 * Thin wrapper: runs the "fig7" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("fig7", argc, argv);
}
