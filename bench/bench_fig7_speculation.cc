/**
 * @file
 * Fig. 7: memory-dependence speculation behaviour.
 *
 * Per benchmark on the medium CMP: cross-core memory-order violations
 * and squashes per kilo-instruction, store-set synchronizations, and
 * the cycle cost of turning speculation off (conservative / spec
 * cycle ratio — above 1.0 means speculation wins).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 7: cross-core memory speculation (medium CMP)");

    const auto p = sim::mediumPreset();
    Table t({"benchmark", "viol/kinst", "squash/kinst", "syncs/kinst",
             "cons/spec"});

    for (const auto &name : bench::allBenchmarks()) {
        std::unique_ptr<part::FgstpMachine> m;
        const auto spec =
            bench::runFgstp(name, p, p.fgstp(), bench::defaultInsts, &m);
        const double kinsts = spec.instructions / 1000.0;
        const auto &fs = m->fgstpStats();
        const double squashes =
            static_cast<double>(m->coreStats(0).squashes +
                                m->coreStats(1).squashes) / 2.0;

        auto cons_cfg = p.fgstp();
        cons_cfg.memSpeculation = false;
        const auto cons = bench::runFgstp(name, p, cons_cfg,
                                          bench::defaultInsts);

        t.addRow({name,
                  Table::fmt(fs.crossViolations / kinsts, 3),
                  Table::fmt(squashes / kinsts, 3),
                  Table::fmt(fs.predictedSyncs / kinsts, 3),
                  Table::fmt(static_cast<double>(cons.cycles) /
                             spec.cycles)});
    }

    t.print(csv);
    return 0;
}
