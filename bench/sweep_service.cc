#include "bench/sweep_service.hh"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/fs.hh"
#include "common/json.hh"
#include "common/version.hh"
#include "fgstp/steering.hh"
#include "sample/sampler.hh"
#include "serve/json_parse.hh"
#include "serve/progress.hh"
#include "uncore/bus.hh"

namespace fgstp::bench
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Escapes the fingerprint's ';' field separators inside raw specs. */
std::string
escapeFpField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == ';' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * A metric value as JSON. json::number maps non-finite values to
 * null; shard rows must instead round-trip them, so they become
 * quoted to_chars spellings ("inf", "nan") that rowValue reads back.
 */
std::string
valueJson(double v)
{
    if (std::isfinite(v))
        return json::number(v);
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return json::quote(std::string(buf, res.ptr));
}

double
rowValue(const serve::JsonValue &v)
{
    if (!v.isString())
        return v.asNumber();
    const std::string &s = v.asString();
    char *end = nullptr;
    const double parsed = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size())
        throw JsonParseError("bad non-finite metric value '" + s + "'");
    return parsed;
}

} // namespace

std::string
paramsFingerprint(const RunParams &params)
{
    // v2 added the coherence model (changes every cell's timing) and
    // the cpistack toggle (entries written without sidecar records
    // cannot serve a --cpi-stack run). The version bump alone retires
    // every v1 key.
    std::string fp = "fgstp-run/v2";
    fp += ";insts=" + std::to_string(params.insts);
    fp += ";seed=" + std::to_string(params.seed);
    fp += ";sampled=" + std::string(params.sampled ? "1" : "0");
    fp += ";sample=" + escapeFpField(params.sampleSpecRaw);
    fp += ";bus=" + std::string(params.bus.enabled ? "1" : "0");
    fp += ";busSpec=" + escapeFpField(params.busSpecRaw);
    fp += ";steer=" + std::string(params.steer ? "1" : "0");
    fp += ";steerSpec=" + escapeFpField(params.steerSpecRaw);
    fp += ";check=" + std::string(params.check ? "1" : "0");
    fp += ";inject=" + escapeFpField(params.injectSpecRaw);
    // The resolved model name, not the raw CLI string, so an explicit
    // --coherence=flat shares the default run's cache namespace.
    fp += ";coherence=" +
          std::string(params.coherence == mem::CoherenceKind::Mesi
                          ? "mesi" : "flat");
    fp += ";cpistack=" + std::string(params.cpiStack ? "1" : "0");
    return fp;
}

serve::CacheContext
makeCacheContext(const RunParams &params)
{
    serve::CacheContext ctx;
    ctx.paramsFingerprint = paramsFingerprint(params);
    ctx.codeVersion = params.codeVersion.empty() ? codeVersion()
                                                 : params.codeVersion;
    return ctx;
}

serve::CellIdentity
cellIdentity(const std::string &experiment, const Cell &cell)
{
    serve::CellIdentity id;
    id.experiment = experiment;
    id.bench = cell.bench;
    id.machine = cell.machine;
    id.seed = cell.seed;
    return id;
}

// ---- sharding --------------------------------------------------------------

ShardScheduled
scheduleShard(const Experiment &e, const RunParams &params,
              const serve::ShardSpec &shard, ThreadPool &pool)
{
    ShardScheduled s;
    s.experiment = &e;
    s.cells = e.makeCells(params);

    const serve::CacheContext ctx = makeCacheContext(params);
    std::vector<std::uint64_t> keys;
    keys.reserve(s.cells.size());
    for (const auto &c : s.cells)
        keys.push_back(serve::cellKeyHash(cellIdentity(e.name, c), ctx));
    const auto owners = serve::assignShards(keys, shard.count);

    for (std::size_t i = 0; i < s.cells.size(); ++i) {
        if (owners[i] == shard.rank)
            s.owned.push_back(i);
    }
    if (params.progress)
        params.progress->addTotal(s.owned.size());
    s.futures.reserve(s.owned.size());
    for (const std::size_t i : s.owned)
        s.futures.push_back(
            submitCellJob(pool, e.name, s.cells[i], params));
    return s;
}

std::size_t
ShardRun::failedCells() const
{
    std::size_t n = 0;
    for (const auto &r : results)
        n += !r.ok;
    return n;
}

ShardRun
collectShard(ShardScheduled &&scheduled)
{
    const auto t0 = Clock::now();
    ShardRun run;
    run.experiment = scheduled.experiment;
    run.cells = std::move(scheduled.cells);
    run.owned = std::move(scheduled.owned);
    run.results.reserve(scheduled.futures.size());
    for (auto &f : scheduled.futures)
        run.results.push_back(f.get());
    run.wallTimeMs = msSince(t0);
    return run;
}

void
renderShardJson(std::ostream &os, const ShardRun &run,
                const RunParams &params, const serve::ShardSpec &shard,
                unsigned pool_jobs)
{
    os << "{\n";
    os << "  \"schemaVersion\": 1,\n";
    os << "  \"kind\": \"shard\",\n";
    os << "  \"experiment\": " << json::quote(run.experiment->name)
       << ",\n";
    os << "  \"shard\": {\"rank\": "
       << json::number(std::uint64_t{shard.rank})
       << ", \"count\": " << json::number(std::uint64_t{shard.count})
       << "},\n";
    os << "  \"meta\": {\n";
    os << "    \"insts\": " << json::number(params.insts) << ",\n";
    os << "    \"evalSeed\": " << json::number(params.seed) << ",\n";
    os << "    \"codeVersion\": "
       << json::quote(params.codeVersion.empty() ? codeVersion()
                                                 : params.codeVersion)
       << ",\n";
    os << "    \"fingerprint\": "
       << json::quote(paramsFingerprint(params)) << ",\n";
    os << "    \"sampled\": " << (params.sampled ? "true" : "false")
       << ",\n";
    os << "    \"sampleSpec\": " << json::quote(params.sampleSpecRaw)
       << ",\n";
    os << "    \"busEnabled\": "
       << (params.bus.enabled ? "true" : "false") << ",\n";
    os << "    \"busSpec\": " << json::quote(params.busSpecRaw) << ",\n";
    os << "    \"steerEnabled\": " << (params.steer ? "true" : "false")
       << ",\n";
    os << "    \"steerSpec\": " << json::quote(params.steerSpecRaw)
       << ",\n";
    os << "    \"check\": " << (params.check ? "true" : "false")
       << ",\n";
    os << "    \"injectSpec\": " << json::quote(params.injectSpecRaw)
       << ",\n";
    os << "    \"coherence\": "
       << json::quote(params.coherence == mem::CoherenceKind::Mesi
                          ? "mesi" : "flat")
       << ",\n";
    os << "    \"cellCount\": "
       << json::number(static_cast<std::uint64_t>(run.cells.size()))
       << ",\n";
    os << "    \"ownedCells\": "
       << json::number(static_cast<std::uint64_t>(run.owned.size()))
       << ",\n";
    os << "    \"failedCells\": "
       << json::number(static_cast<std::uint64_t>(run.failedCells()))
       << ",\n";
    os << "    \"poolJobs\": "
       << json::number(static_cast<std::uint64_t>(pool_jobs))
       << ", \"wallTimeMs\": " << json::number(run.wallTimeMs) << "\n";
    os << "  },\n";
    os << "  \"rows\": [\n";
    for (std::size_t k = 0; k < run.owned.size(); ++k) {
        const std::size_t i = run.owned[k];
        const auto &c = run.cells[i];
        const auto &r = run.results[k];
        os << "    {\"index\": "
           << json::number(static_cast<std::uint64_t>(i))
           << ", \"bench\": " << json::quote(c.bench)
           << ", \"machine\": " << json::quote(c.machine)
           << ", \"seed\": " << json::number(c.seed) << ", \"status\": "
           << (r.ok ? "\"ok\"" : "\"failed\"");
        if (!r.ok)
            os << ", \"error\": " << json::quote(r.error);
        os << ", \"values\": [";
        for (std::size_t v = 0; v < r.values.size(); ++v)
            os << (v ? ", " : "") << valueJson(r.values[v]);
        os << "], \"wallTimeMs\": " << json::number(r.wallTimeMs) << "}"
           << (k + 1 < run.owned.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

// ---- merging ---------------------------------------------------------------

namespace
{

/** One parsed shard document, pre-validated for structure. */
struct ShardDoc
{
    std::string file;
    unsigned rank = 0;
    unsigned count = 0;
    std::string codeVersion;
    std::string fingerprint;
    std::uint64_t insts = 0;
    std::uint64_t evalSeed = 0;
    bool sampled = false;
    std::string sampleSpec;
    bool busEnabled = false;
    std::string busSpec;
    bool steerEnabled = false;
    std::string steerSpec;
    bool check = false;
    std::string injectSpec;
    std::string coherence;
    std::uint64_t cellCount = 0;
    double wallTimeMs = 0.0;
    std::uint64_t poolJobs = 0;
    serve::JsonValue rows;
};

ShardDoc
loadShardDoc(const std::string &file)
{
    std::ifstream is(file, std::ios::binary);
    if (!is)
        throw SimIoError("cannot read shard file '" + file + "'");
    std::ostringstream buf;
    buf << is.rdbuf();

    serve::JsonValue doc;
    try {
        doc = serve::parseJson(buf.str());
    } catch (const JsonParseError &ex) {
        throw JsonParseError("'" + file + "': " + ex.what());
    }

    try {
        if (doc.at("kind").asString() != "shard" ||
            doc.at("schemaVersion").asUint() != 1) {
            throw ShardMergeError(
                "'" + file +
                "' is not a schema-v1 shard document (was it a "
                "BENCH_*.json instead of a BENCH_*.shard*.json?)");
        }
        ShardDoc out;
        out.file = file;
        const auto &shard = doc.at("shard");
        out.rank = static_cast<unsigned>(shard.at("rank").asUint());
        out.count = static_cast<unsigned>(shard.at("count").asUint());
        const auto &meta = doc.at("meta");
        out.codeVersion = meta.at("codeVersion").asString();
        out.fingerprint = meta.at("fingerprint").asString();
        out.insts = meta.at("insts").asUint();
        out.evalSeed = meta.at("evalSeed").asUint();
        out.sampled = meta.at("sampled").asBool();
        out.sampleSpec = meta.at("sampleSpec").asString();
        out.busEnabled = meta.at("busEnabled").asBool();
        out.busSpec = meta.at("busSpec").asString();
        out.steerEnabled = meta.at("steerEnabled").asBool();
        out.steerSpec = meta.at("steerSpec").asString();
        out.check = meta.at("check").asBool();
        out.injectSpec = meta.at("injectSpec").asString();
        out.coherence = meta.at("coherence").asString();
        out.cellCount = meta.at("cellCount").asUint();
        out.wallTimeMs = meta.at("wallTimeMs").asNumber();
        out.poolJobs = meta.at("poolJobs").asUint();
        out.rows = doc.at("rows");
        out.rows.asArray(); // type-check up front
        if (out.count == 0 || out.rank >= out.count) {
            throw ShardMergeError("'" + file +
                                  "' has an invalid shard rank/count");
        }
        // The experiment key is handled by the caller (grouping).
        doc.at("experiment").asString();
        return out;
    } catch (const JsonParseError &ex) {
        throw ShardMergeError("'" + file +
                              "' is malformed: " + ex.what());
    }
}

/** Rebuilds the exact RunParams the shard set was produced with. */
RunParams
paramsFromShardDoc(const ShardDoc &doc)
{
    RunParams params;
    params.insts = doc.insts;
    params.seed = doc.evalSeed;
    params.codeVersion = doc.codeVersion;
    params.sampleSpecRaw = doc.sampleSpec;
    params.busSpecRaw = doc.busSpec;
    params.steerSpecRaw = doc.steerSpec;
    params.check = doc.check;
    params.injectSpecRaw = doc.injectSpec;
    if (doc.sampled) {
        params.sampled = true;
        if (!doc.sampleSpec.empty())
            params.sample = sample::parseSampleSpec(doc.sampleSpec);
    }
    if (doc.busEnabled)
        params.bus = uncore::parseBusConfig(doc.busSpec);
    if (doc.steerEnabled) {
        params.steer = true;
        params.steerSpec = part::parseSteeringSpec(doc.steerSpec);
    }
    if (doc.coherence == "mesi") {
        params.coherence = mem::CoherenceKind::Mesi;
    } else if (doc.coherence != "flat") {
        throw ShardMergeError("'" + doc.file +
                              "' records unknown coherence model '" +
                              doc.coherence + "'");
    }
    if (paramsFingerprint(params) != doc.fingerprint) {
        throw ShardMergeError(
            "'" + doc.file +
            "': run-parameter fingerprint mismatch after "
            "reconstruction — the shard was produced by an "
            "incompatible fgstp_bench (fingerprint format drift)");
    }
    return params;
}

MergedExperiment
mergeOneExperiment(const std::string &name, std::vector<ShardDoc> &docs,
                   const std::string &out_dir)
{
    const ShardDoc &ref = docs.front();
    for (const ShardDoc &d : docs) {
        if (d.count != ref.count) {
            throw ShardMergeError(
                "experiment '" + name + "': '" + d.file + "' is 1 of " +
                std::to_string(d.count) + " shards but '" + ref.file +
                "' is 1 of " + std::to_string(ref.count));
        }
        if (d.fingerprint != ref.fingerprint) {
            throw ShardMergeError(
                "experiment '" + name + "': '" + d.file + "' and '" +
                ref.file +
                "' were produced with different run parameters and "
                "cannot be merged");
        }
        if (d.codeVersion != ref.codeVersion) {
            throw ShardMergeError(
                "experiment '" + name + "': '" + d.file + "' (" +
                d.codeVersion + ") and '" + ref.file + "' (" +
                ref.codeVersion +
                ") were produced by different builds");
        }
        if (d.cellCount != ref.cellCount) {
            throw ShardMergeError("experiment '" + name +
                                  "': shard files disagree on the "
                                  "cell count");
        }
    }
    std::vector<bool> have(ref.count, false);
    for (const ShardDoc &d : docs) {
        if (have[d.rank]) {
            throw ShardMergeError("experiment '" + name + "': shard " +
                                  std::to_string(d.rank) + "/" +
                                  std::to_string(d.count) +
                                  " appears more than once");
        }
        have[d.rank] = true;
    }
    for (unsigned r = 0; r < ref.count; ++r) {
        if (!have[r]) {
            throw ShardMergeError(
                "experiment '" + name + "': incomplete shard set — "
                "missing shard " + std::to_string(r) + "/" +
                std::to_string(ref.count));
        }
    }

    const RunParams params = paramsFromShardDoc(ref);
    const Experiment *e = findExperiment(name);
    if (!e) {
        throw ShardMergeError("shard files name unknown experiment '" +
                              name + "'");
    }

    ExperimentRun run;
    run.experiment = e;
    run.cells = e->makeCells(params);
    if (run.cells.size() != ref.cellCount) {
        throw ShardMergeError(
            "experiment '" + name + "': this binary enumerates " +
            std::to_string(run.cells.size()) +
            " cells but the shard files recorded " +
            std::to_string(ref.cellCount) +
            " — the experiment changed since the shards ran");
    }

    std::vector<std::optional<CellResult>> filled(run.cells.size());
    double wall_total = 0.0;
    std::uint64_t pool_jobs = 1;
    for (const ShardDoc &d : docs) {
        wall_total += d.wallTimeMs;
        pool_jobs = std::max(pool_jobs, d.poolJobs);
        for (const serve::JsonValue &row : d.rows.asArray()) {
            std::uint64_t index = 0;
            CellResult r;
            try {
                index = row.at("index").asUint();
                const std::string &status =
                    row.at("status").asString();
                r.ok = status == "ok";
                if (!r.ok && status != "failed") {
                    throw JsonParseError("bad row status '" + status +
                                         "'");
                }
                if (!r.ok)
                    r.error = row.at("error").asString();
                r.wallTimeMs = row.at("wallTimeMs").asNumber();
                for (const serve::JsonValue &v :
                     row.at("values").asArray())
                    r.values.push_back(rowValue(v));
            } catch (const JsonParseError &ex) {
                throw ShardMergeError("'" + d.file +
                                      "': bad row: " + ex.what());
            }
            if (index >= run.cells.size()) {
                throw ShardMergeError(
                    "'" + d.file + "': row index " +
                    std::to_string(index) + " out of range");
            }
            const Cell &c = run.cells[index];
            if (row.at("bench").asString() != c.bench ||
                row.at("machine").asString() != c.machine ||
                row.at("seed").asUint() != c.seed) {
                throw ShardMergeError(
                    "'" + d.file + "': row " + std::to_string(index) +
                    " (" + row.at("bench").asString() + "/" +
                    row.at("machine").asString() +
                    ") does not match this binary's cell list (" +
                    c.bench + "/" + c.machine +
                    ") — the experiment changed since the shards ran");
            }
            if (filled[index]) {
                throw ShardMergeError("'" + d.file + "': cell " +
                                      std::to_string(index) +
                                      " already provided by another "
                                      "shard");
            }
            filled[index] = std::move(r);
        }
    }
    for (std::size_t i = 0; i < filled.size(); ++i) {
        if (!filled[i]) {
            throw ShardMergeError(
                "experiment '" + name + "': cell " + std::to_string(i) +
                " (" + run.cells[i].bench + "/" +
                run.cells[i].machine +
                ") is in no shard file — were all shards run to "
                "completion?");
        }
        run.results.push_back(std::move(*filled[i]));
    }

    finalizeRunOutput(run, params);
    run.wallTimeMs = wall_total;

    MergedExperiment merged;
    merged.experiment = name;
    merged.cellCount = run.cells.size();
    merged.failedCells = run.failedCells();
    merged.path = out_dir + "/BENCH_" + name + ".json";
    AtomicFileWriter out(merged.path);
    renderJson(out.stream(), run, params,
               static_cast<unsigned>(pool_jobs));
    out.commit();
    return merged;
}

} // namespace

std::vector<MergedExperiment>
mergeShards(const std::vector<std::string> &files,
            const std::string &out_dir)
{
    // Group by experiment, preserving first-appearance order so the
    // summary reads in the order the user listed the files.
    std::vector<std::string> order;
    std::map<std::string, std::vector<ShardDoc>> groups;
    for (const std::string &file : files) {
        std::ifstream is(file, std::ios::binary);
        if (!is)
            throw SimIoError("cannot read shard file '" + file + "'");
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string name;
        try {
            name = serve::parseJson(buf.str())
                       .at("experiment")
                       .asString();
        } catch (const JsonParseError &ex) {
            throw JsonParseError("'" + file + "': " + ex.what());
        }
        if (!groups.count(name))
            order.push_back(name);
        groups[name].push_back(loadShardDoc(file));
    }

    std::vector<MergedExperiment> merged;
    for (const std::string &name : order)
        merged.push_back(
            mergeOneExperiment(name, groups[name], out_dir));
    return merged;
}

// ---- serve mode ------------------------------------------------------------

namespace
{

/** One serve response row for a finished cell. */
std::string
serveRow(const std::string &experiment, const Cell &c,
         const CellResult &r)
{
    std::string row = "{\"experiment\": " + json::quote(experiment);
    row += ", \"bench\": " + json::quote(c.bench);
    row += ", \"machine\": " + json::quote(c.machine);
    row += ", \"seed\": " + json::number(c.seed);
    row += ", \"status\": ";
    row += r.ok ? "\"ok\"" : "\"failed\"";
    if (!r.ok)
        row += ", \"error\": " + json::quote(r.error);
    row += ", \"values\": [";
    for (std::size_t v = 0; v < r.values.size(); ++v) {
        if (v)
            row += ", ";
        row += valueJson(r.values[v]);
    }
    row += "], \"wallTimeMs\": " + json::number(r.wallTimeMs) + "}";
    return row;
}

/**
 * Answers one request line: selects the matching cells, runs them
 * (cache-first) on the pool, streams a row per cell and a done line.
 * Returns false only for a shutdown request.
 */
bool
handleRequest(const std::string &line, const RunParams &params,
              ThreadPool &pool, std::uint64_t timeout_ms,
              const std::function<void(const std::string &)> &emit,
              std::uint64_t &errors)
{
    const auto fail = [&emit, &errors](const std::string &what) {
        ++errors;
        emit("{\"error\": " + json::quote(what) + "}");
    };
    try {
        const serve::JsonValue req = serve::parseJson(line);
        if (!req.isObject()) {
            fail("request must be a JSON object");
            return true;
        }
        if (const auto *shutdown = req.find("shutdown");
            shutdown && shutdown->asBool()) {
            emit("{\"done\": true, \"shutdown\": true}");
            return false;
        }
        const std::string name = req.at("experiment").asString();
        const Experiment *e = findExperiment(name);
        if (!e) {
            fail("unknown experiment '" + name + "'");
            return true;
        }
        const auto *bench_f = req.find("bench");
        const auto *machine_f = req.find("machine");

        std::vector<Cell> cells = e->makeCells(params);
        std::vector<std::size_t> matching;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (bench_f && cells[i].bench != bench_f->asString())
                continue;
            if (machine_f && cells[i].machine != machine_f->asString())
                continue;
            matching.push_back(i);
        }
        if (matching.empty()) {
            fail("no cells of '" + name + "' match the request");
            return true;
        }

        std::vector<std::future<CellResult>> futures;
        futures.reserve(matching.size());
        for (const std::size_t i : matching)
            futures.push_back(
                submitCellJob(pool, name, cells[i], params));

        // One wall-clock budget covers the whole request: a hung or
        // pathologically slow cell turns into a failed row (and the
        // remaining cells are reported without waiting again — the
        // budget is already gone), never a wedged server. Abandoned
        // cells keep their pool threads until they return.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_ms);
        std::uint64_t failed = 0;
        bool timed_out = false;
        for (std::size_t k = 0; k < matching.size(); ++k) {
            CellResult r;
            if (timeout_ms &&
                (timed_out ||
                 futures[k].wait_until(deadline) !=
                     std::future_status::ready)) {
                timed_out = true;
                r.ok = false;
                r.error = "request wall-clock budget exceeded (" +
                          std::to_string(timeout_ms) +
                          " ms); cell abandoned";
            } else {
                r = futures[k].get();
            }
            failed += !r.ok;
            emit(serveRow(name, cells[matching[k]], r));
        }
        emit("{\"done\": true, \"experiment\": " + json::quote(name) +
             ", \"cells\": " +
             json::number(static_cast<std::uint64_t>(matching.size())) +
             ", \"failed\": " + json::number(failed) +
             ", \"status\": " +
             (failed ? "\"failed\"" : "\"ok\"") + "}");
        return true;
    } catch (const SimError &ex) {
        // Crash isolation per request: a malformed line or an
        // unanswerable request reports an error row; the server
        // lives on to answer the next line.
        fail(ex.what());
        return true;
    }
}

} // namespace

serve::ServeStats
runCellServe(const serve::ServeConfig &config, const RunParams &params,
             ThreadPool &pool)
{
    const std::uint64_t hits0 =
        params.cache ? params.cache->stats().hits : 0;
    std::uint64_t errors = 0;
    serve::ServeStats stats = serve::runLineServer(
        config, [&params, &pool, &errors,
                 timeout_ms = config.requestTimeoutMs](
                    const std::string &line, const auto &emit) {
            return handleRequest(line, params, pool, timeout_ms, emit,
                                 errors);
        });
    stats.errors = errors;
    if (params.cache)
        stats.cacheHits = params.cache->stats().hits - hits0;
    return stats;
}

} // namespace fgstp::bench
