/**
 * @file
 * Fig. 9: partitioning granularity (fine-grain vs chunks).
 *
 * Thin wrapper: runs the "fig9" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("fig9", argc, argv);
}
