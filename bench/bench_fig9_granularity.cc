/**
 * @file
 * Fig. 9: fine-grain vs chunk-granularity partitioning.
 *
 * The paper's title claim: partitioning at *instruction* granularity
 * with dependence awareness beats the coarse chunk-alternation of
 * earlier thread-partitioning proposals. This bench runs the Fg-STP
 * machine with the dependence-aware partitioner and with fixed-size
 * chunk alternation at several chunk sizes, reporting geomean speedup
 * over one core (medium CMP, sweep subset) and the communication rate
 * each granularity induces.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 9: partitioning granularity (medium CMP)");

    const auto p = sim::mediumPreset();
    const auto benches = bench::sweepBenchmarks();

    std::vector<double> base_cycles;
    for (const auto &name : benches)
        base_cycles.push_back(static_cast<double>(
            bench::runSingle(name, p).cycles));

    Table t({"partitioning", "speedup", "comm%"});

    auto run_cfg = [&](const part::FgstpConfig &cfg, const char *label) {
        std::vector<double> sp;
        double comm = 0.0;
        for (std::size_t i = 0; i < benches.size(); ++i) {
            std::unique_ptr<part::FgstpMachine> m;
            const auto s = bench::runFgstp(benches[i], p, cfg,
                                           bench::defaultInsts, &m);
            sp.push_back(base_cycles[i] / s.cycles);
            comm += m->partitionStats().commRate();
        }
        t.addRow({label, Table::fmt(bench::geomeanRatio(sp)),
                  Table::fmt(100.0 * comm / benches.size(), 2)});
    };

    run_cfg(p.fgstp(), "fine-grain (Fg-STP)");

    for (const std::uint32_t chunk : {8u, 32u, 128u, 512u}) {
        auto cfg = p.fgstp();
        cfg.granularity = part::Granularity::Chunk;
        cfg.chunkSize = chunk;
        const std::string label = "chunk-" + std::to_string(chunk);
        run_cfg(cfg, label.c_str());
    }

    t.print(csv);
    std::printf("\nexpected shape: fine-grain on top; small chunks "
                "drown in communication, large chunks idle one core.\n");
    return 0;
}
