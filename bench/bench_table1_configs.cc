/**
 * @file
 * Table 1: the two CMP design points (machine configurations).
 *
 * Prints every parameter the timing models consume for the small and
 * medium presets, plus the derived Core Fusion and Fg-STP settings.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "fusion/fused_config.hh"

using namespace fgstp;
using bench::Table;

namespace
{

std::string
u(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Table 1: machine configurations");

    const auto small = sim::smallPreset();
    const auto medium = sim::mediumPreset();

    Table t({"parameter", "small", "medium"});
    auto row = [&](const char *name, std::uint64_t s, std::uint64_t m) {
        t.addRow({name, u(s), u(m)});
    };

    row("fetch/decode/issue/commit width", small.core.fetchWidth,
        medium.core.fetchWidth);
    row("ROB entries", small.core.robSize, medium.core.robSize);
    row("IQ entries", small.core.iqSize, medium.core.iqSize);
    row("LQ entries", small.core.lqSize, medium.core.lqSize);
    row("SQ entries", small.core.sqSize, medium.core.sqSize);
    row("front-end depth (cycles)", small.core.frontendDepth,
        medium.core.frontendDepth);
    row("int ALUs", small.core.fuPerCluster.intAlu,
        medium.core.fuPerCluster.intAlu);
    row("int mul/div units", small.core.fuPerCluster.intMulDiv,
        medium.core.fuPerCluster.intMulDiv);
    row("FP units", small.core.fuPerCluster.fp,
        medium.core.fuPerCluster.fp);
    row("memory ports", small.core.fuPerCluster.memPorts,
        medium.core.fuPerCluster.memPorts);
    row("predictor entries", small.core.predictor.tableEntries,
        medium.core.predictor.tableEntries);
    row("BTB entries", small.core.predictor.btbEntries,
        medium.core.predictor.btbEntries);
    row("L1I/L1D size (KB)", small.memory.l1d.sizeBytes / 1024,
        medium.memory.l1d.sizeBytes / 1024);
    row("L1 latency", small.memory.l1Latency, medium.memory.l1Latency);
    row("shared L2 size (KB)", small.memory.l2.sizeBytes / 1024,
        medium.memory.l2.sizeBytes / 1024);
    row("L2 latency", small.memory.l2Latency, medium.memory.l2Latency);
    row("DRAM latency", small.memory.dramLatency,
        medium.memory.dramLatency);
    row("L1D MSHRs", small.memory.numMshrs, medium.memory.numMshrs);
    row("link latency (cycles)", small.link.latency,
        medium.link.latency);
    row("link width (values/cycle)", small.link.width,
        medium.link.width);
    row("Fg-STP partition window", small.partitionWindow,
        medium.partitionWindow);
    row("fusion extra FE stages",
        small.fusionOverheads.extraFrontendStages,
        medium.fusionOverheads.extraFrontendStages);
    row("fusion cross-backend delay",
        small.fusionOverheads.crossBackendDelay,
        medium.fusionOverheads.crossBackendDelay);

    t.print(csv);
    return 0;
}
