/**
 * @file
 * Table 1: the two CMP design points (machine configurations).
 *
 * Thin wrapper: runs the "table1" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("table1", argc, argv);
}
