/**
 * @file
 * Fig. 8: coupled 2-core schemes vs one big core.
 *
 * Thin wrapper: runs the "fig8" experiment from bench/experiments.cc
 * through the shared pool and prints it as text (--csv for CSV). The
 * fgstp_bench runner drives the same descriptor with more options.
 */

#include "bench/experiments.hh"

int
main(int argc, char **argv)
{
    return fgstp::bench::legacyMain("fig8", argc, argv);
}
