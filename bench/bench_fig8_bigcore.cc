/**
 * @file
 * Fig. 8: two coupled cores vs one big core.
 *
 * The classic Core-Fusion-literature comparison: is gluing two medium
 * cores together (Core Fusion or Fg-STP) competitive with building one
 * monolithic core of twice the resources (which pays a deeper front
 * end but no coupling overheads)?
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace fgstp;
using bench::Table;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    bench::banner("Fig. 8: coupled 2-core schemes vs one big core "
                  "(normalized to one medium core)");

    const auto p = sim::mediumPreset();
    const auto big = sim::bigCoreConfig();

    Table t({"benchmark", "bigCore", "coreFusion", "fgStp"});
    std::vector<double> sp_big, sp_fused, sp_stp;

    for (const auto &name : bench::allBenchmarks()) {
        const auto base = bench::runSingle(name, p);
        const auto bigr = bench::runSingleWithCore(name, big, p);
        const auto fused = bench::runFused(name, p);
        const auto stp = bench::runFgstp(name, p);

        const double b = static_cast<double>(base.cycles) / bigr.cycles;
        const double f =
            static_cast<double>(base.cycles) / fused.cycles;
        const double s = static_cast<double>(base.cycles) / stp.cycles;
        sp_big.push_back(b);
        sp_fused.push_back(f);
        sp_stp.push_back(s);
        t.addRow({name, Table::fmt(b), Table::fmt(f), Table::fmt(s)});
    }

    t.addRow({"GEOMEAN", Table::fmt(bench::geomeanRatio(sp_big)),
              Table::fmt(bench::geomeanRatio(sp_fused)),
              Table::fmt(bench::geomeanRatio(sp_stp))});
    t.print(csv);
    return 0;
}
