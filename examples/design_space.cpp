/**
 * @file
 * Scenario: design-space exploration for the Fg-STP hardware.
 *
 * An architect sizing the scheme wants to know how much link latency
 * the design can tolerate and how large the partition window must be.
 * This example sweeps both axes for one benchmark and prints the
 * speedup matrix, exercising the FgstpConfig API.
 *
 *   ./design_space [benchmark]
 */

#include <cstdio>
#include <string>

#include "fgstp/machine.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "workload/generator.hh"

using namespace fgstp;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t insts = 40000;
    constexpr std::uint64_t seed = 3;

    const auto preset = sim::mediumPreset();
    const auto profile = workload::profileByName(bench);

    workload::SyntheticWorkload w0(profile, seed);
    sim::SingleCoreMachine base(preset.core, preset.memory, w0);
    const double base_cycles =
        static_cast<double>(base.run(insts).cycles);

    const Cycle lats[] = {1, 2, 4, 8, 16};
    const std::uint32_t windows[] = {64, 128, 256, 512, 1024};

    std::printf("Fg-STP speedup over 1 core, benchmark %s "
                "(rows: window, cols: link latency)\n\n",
                bench.c_str());
    std::printf("%8s", "window");
    for (const Cycle lat : lats)
        std::printf("  lat=%-4lu", static_cast<unsigned long>(lat));
    std::printf("\n");

    for (const std::uint32_t win : windows) {
        std::printf("%8u", win);
        for (const Cycle lat : lats) {
            auto cfg = preset.fgstp();
            cfg.windowSize = win;
            cfg.link.latency = lat;
            cfg.steer.commCost =
                static_cast<double>(2 * std::max<Cycle>(lat, 4));

            workload::SyntheticWorkload w(profile, seed);
            part::FgstpMachine m(preset.core, preset.memory, cfg, w);
            const auto r = m.run(insts);
            std::printf("  %-7.3f", base_cycles / r.cycles);
        }
        std::printf("\n");
    }

    std::printf("\nreading the matrix: move down-left (bigger window, "
                "faster link) for more speedup; the flat region shows\n"
                "where the scheme saturates and extra hardware stops "
                "paying.\n");
    return 0;
}
