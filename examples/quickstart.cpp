/**
 * @file
 * Quickstart: run one benchmark on the three machine models.
 *
 * Builds a synthetic SPEC2006-like workload, runs the single-core
 * baseline, the Core Fusion comparator and Fg-STP on the medium CMP,
 * and prints IPC and speedups.
 *
 *   ./quickstart [benchmark] [instructions]
 *   ./quickstart gcc 100000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "workload/generator.hh"

using namespace fgstp;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "hmmer";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;

    const auto preset = sim::mediumPreset();
    const auto profile = workload::profileByName(bench);
    constexpr std::uint64_t seed = 1;

    std::printf("benchmark: %s   instructions: %lu   preset: %s\n\n",
                bench.c_str(), static_cast<unsigned long>(insts),
                preset.name);

    // 1. One conventional out-of-order core.
    workload::SyntheticWorkload w_base(profile, seed);
    sim::SingleCoreMachine baseline(preset.core, preset.memory, w_base);
    const auto r_base = baseline.run(insts);
    std::printf("%-12s ipc=%.3f  cycles=%lu\n", "1-core:",
                r_base.ipc(), static_cast<unsigned long>(r_base.cycles));

    // 2. Core Fusion: the two cores fused into one wide logical core.
    workload::SyntheticWorkload w_fused(profile, seed);
    fusion::FusedMachine fused(preset.core, preset.memory, w_fused,
                               preset.fusionOverheads);
    const auto r_fused = fused.run(insts);
    std::printf("%-12s ipc=%.3f  cycles=%lu  speedup=%.3f\n",
                "core-fusion:", r_fused.ipc(),
                static_cast<unsigned long>(r_fused.cycles),
                static_cast<double>(r_base.cycles) / r_fused.cycles);

    // 3. Fg-STP: the thread partitioned across both cores at
    //    instruction granularity.
    workload::SyntheticWorkload w_stp(profile, seed);
    part::FgstpMachine stp(preset.core, preset.memory, preset.fgstp(),
                           w_stp);
    const auto r_stp = stp.run(insts);
    std::printf("%-12s ipc=%.3f  cycles=%lu  speedup=%.3f "
                "(vs fusion: %.3f)\n",
                "fg-stp:", r_stp.ipc(),
                static_cast<unsigned long>(r_stp.cycles),
                static_cast<double>(r_base.cycles) / r_stp.cycles,
                static_cast<double>(r_fused.cycles) / r_stp.cycles);

    const auto &ps = stp.partitionStats();
    std::printf("\nfg-stp internals: %.1f%% of work on core 1, "
                "%.1f%% of values cross the link, "
                "%.1f%% of instructions replicated\n",
                100.0 * ps.remoteFraction(), 100.0 * ps.commRate(),
                100.0 * ps.replicationRate());
    return 0;
}
