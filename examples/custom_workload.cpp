/**
 * @file
 * Scenario: will Fg-STP help *my* application?
 *
 * Shows the workload-modeling API: define a BenchmarkProfile with the
 * performance-relevant characteristics of your own code (instruction
 * mix, dependence structure, branch predictability, memory footprint
 * and access patterns), then compare the machine models on it.
 *
 * The example models a hypothetical "graph-analytics" kernel: pointer
 * chasing over a large graph interleaved with short arithmetic bursts
 * per visited node — the classic tough case for single-thread
 * acceleration.
 */

#include <cstdio>

#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "workload/generator.hh"

using namespace fgstp;

namespace
{

workload::BenchmarkProfile
graphAnalyticsProfile()
{
    workload::BenchmarkProfile p;
    p.name = "graph-analytics";

    // Per visited node: a pointer dereference chain plus a burst of
    // independent score updates.
    p.fracLoad = 0.33;
    p.fracStore = 0.10;
    p.depLookback = 4.0;     // short chains inside the burst
    p.fracInvariantSrc = 0.2;
    p.fracTwoSrcOps = 0.5;

    // Control: mostly the visit loop, some data-dependent filtering.
    p.fracIf = 0.18;
    p.fracRandomBr = 0.15;
    p.fracPatternedBr = 0.15;

    // Memory: a 32MB graph walked through next-pointers, with a hot
    // property table getting strided access.
    p.footprintKB = 32 * 1024;
    p.fracChaseAcc = 0.45;
    p.fracStrideAcc = 0.20;
    p.fracRandomAcc = 0.15;
    p.fracStreamAcc = 0.05;
    p.fracStackAcc = 0.15;

    p.numTopLoops = 4;
    p.bodyOps = 18;
    p.minTrip = 16;
    p.maxTrip = 96;
    return p;
}

} // namespace

int
main()
{
    const auto profile = graphAnalyticsProfile();
    const std::uint64_t insts = 60000;
    constexpr std::uint64_t seed = 7;

    std::printf("custom workload: %s (%lu KB footprint, %.0f%% pointer "
                "chase)\n\n",
                profile.name.c_str(),
                static_cast<unsigned long>(profile.footprintKB),
                100.0 * profile.fracChaseAcc);

    for (const auto *preset_name : {"small", "medium"}) {
        const auto preset = sim::presetByName(preset_name);

        workload::SyntheticWorkload w1(profile, seed);
        sim::SingleCoreMachine base(preset.core, preset.memory, w1);
        const auto rb = base.run(insts);

        workload::SyntheticWorkload w2(profile, seed);
        fusion::FusedMachine fused(preset.core, preset.memory, w2,
                                   preset.fusionOverheads);
        const auto rf = fused.run(insts);

        workload::SyntheticWorkload w3(profile, seed);
        part::FgstpMachine stp(preset.core, preset.memory,
                               preset.fgstp(), w3);
        const auto rs = stp.run(insts);

        std::printf("[%s preset]\n", preset.name);
        std::printf("  1-core       ipc=%.3f\n", rb.ipc());
        std::printf("  core-fusion  ipc=%.3f  speedup=%.3f\n",
                    rf.ipc(),
                    static_cast<double>(rb.cycles) / rf.cycles);
        std::printf("  fg-stp       ipc=%.3f  speedup=%.3f  "
                    "(violations=%lu, store-set syncs=%lu)\n\n",
                    rs.ipc(),
                    static_cast<double>(rb.cycles) / rs.cycles,
                    static_cast<unsigned long>(
                        stp.fgstpStats().crossViolations),
                    static_cast<unsigned long>(
                        stp.fgstpStats().predictedSyncs));
    }

    std::printf("takeaway: serial pointer chases limit every scheme; "
                "the burst work between dereferences is what the\n"
                "partitioner spreads across cores. Raise depLookback "
                "or bodyOps to see the Fg-STP gain grow.\n");
    return 0;
}
