/**
 * @file
 * Scenario: pipeline archaeology on a hand-written trace.
 *
 * Demonstrates the trace-level API: construct a dynamic instruction
 * sequence directly (here: a store whose address resolves late,
 * followed by loads that may or may not alias), replay it through a
 * core, and watch the memory-dependence machinery work — forwarding,
 * speculation, violation squashes and store-set learning.
 */

#include <cstdio>

#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "trace/trace_source.hh"
#include "workload/microbench.hh"

using namespace fgstp;

namespace
{

void
replay(const char *label, std::vector<trace::DynInst> trace,
       bool speculative_loads)
{
    auto preset = sim::mediumPreset();
    preset.core.speculativeLoads = speculative_loads;

    trace::VectorTraceSource src(std::move(trace));
    sim::SingleCoreMachine m(preset.core, preset.memory, src);
    const auto r = m.run(1'000'000'000);
    const auto &cs = m.coreStats(0);

    std::printf("%-28s ipc=%.3f  forwarded=%lu  speculative=%lu  "
                "violations=%lu  squashes=%lu\n",
                label, r.ipc(),
                static_cast<unsigned long>(cs.loadsForwarded),
                static_cast<unsigned long>(cs.loadsSpeculative),
                static_cast<unsigned long>(cs.memOrderViolations),
                static_cast<unsigned long>(cs.squashes));
}

} // namespace

int
main()
{
    std::printf("store/load interplay on one medium core "
                "(4000 store-load pairs each)\n\n");

    // Same-address pairs back to back: the LSQ forwards.
    replay("forwarding pairs:",
           workload::storeLoadForwardTrace(4000), true);

    // Aliasing pairs with the store address resolving late: the first
    // collision squashes, then the store set synchronizes the pair.
    replay("aliasing, speculative:",
           workload::memoryAliasTrace(4000, 6), true);

    // The same trace with load speculation disabled: no violations,
    // but every load waits for every older unresolved store.
    replay("aliasing, conservative:",
           workload::memoryAliasTrace(4000, 6), false);

    // Disjoint addresses: speculation is pure win.
    auto disjoint = workload::memoryAliasTrace(4000, 6);
    for (auto &d : disjoint) {
        if (d.isLoad())
            d.effAddr += 0x1000000;
    }
    auto disjoint2 = disjoint;
    replay("disjoint, speculative:", std::move(disjoint), true);
    replay("disjoint, conservative:", std::move(disjoint2), false);

    std::printf("\nthe gap between the last two lines is the price of "
                "conservatism that Fg-STP's cross-core dependence\n"
                "speculation avoids paying on two coupled cores.\n");
    return 0;
}
