/**
 * @file
 * Scenario: is Fg-STP worth its power?
 *
 * Uses the activity-based energy model to compare performance,
 * energy-per-instruction and energy-delay of the four machine options
 * on one benchmark — the question an architect asks before spending
 * two cores on one thread.
 *
 *   ./energy_study [benchmark]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "fgstp/machine.hh"
#include "fusion/fused_machine.hh"
#include "power/energy_model.hh"
#include "sim/presets.hh"
#include "sim/single_core.hh"
#include "workload/generator.hh"

using namespace fgstp;

namespace
{

power::EnergyBreakdown
energyOf(const sim::Machine &m, const sim::RunResult &r,
         double width_factor, bool fgstp_part, bool fusion_steer,
         std::uint64_t transfers)
{
    std::vector<const core::CoreStats *> cs;
    for (unsigned i = 0; i < m.numCores(); ++i)
        cs.push_back(&m.coreStats(i));
    auto act = power::gatherActivity(cs.data(), m.numCores(),
                                     m.memory().stats(), r.cycles,
                                     r.instructions, width_factor);
    act.fgstpPartitioning = fgstp_part;
    act.fusionSteering = fusion_steer;
    act.linkTransfers = transfers;
    return power::estimateEnergy(act);
}

void
report(const char *label, double speedup,
       const power::EnergyBreakdown &e, double base_edp)
{
    std::printf("%-12s speedup=%.3f  epi=%.2fnJ "
                "(fe %.0f%% be %.0f%% mem %.0f%% couple %.0f%% "
                "leak %.0f%%)  EDP=%.3fx\n",
                label, speedup, e.epi,
                100 * e.frontend / e.total(),
                100 * e.backend / e.total(),
                100 * e.memory / e.total(),
                100 * e.coupling / e.total(),
                100 * e.leakage / e.total(), e.edp / base_edp);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "h264ref";
    const std::uint64_t insts = 50000;
    const auto p = sim::mediumPreset();
    const auto prof = workload::profileByName(bench);

    std::printf("energy study: %s, %lu instructions, medium design "
                "point\n\n",
                bench.c_str(), static_cast<unsigned long>(insts));

    workload::SyntheticWorkload w1(prof, 1);
    sim::SingleCoreMachine base(p.core, p.memory, w1);
    const auto rb = base.run(insts);
    const auto eb = energyOf(base, rb, 1.0, false, false, 0);
    report("1-core", 1.0, eb, eb.edp);

    workload::SyntheticWorkload w2(prof, 1);
    sim::SingleCoreMachine big(sim::bigCoreConfig(), p.memory, w2,
                               "big-core");
    const auto rg = big.run(insts);
    report("big-core", static_cast<double>(rb.cycles) / rg.cycles,
           energyOf(big, rg, 2.0, false, false, 0), eb.edp);

    workload::SyntheticWorkload w3(prof, 1);
    fusion::FusedMachine fused(p.core, p.memory, w3, p.fusionOverheads);
    const auto rf = fused.run(insts);
    report("core-fusion", static_cast<double>(rb.cycles) / rf.cycles,
           energyOf(fused, rf, 2.0, false, true, 0), eb.edp);

    workload::SyntheticWorkload w4(prof, 1);
    part::FgstpMachine stp(p.core, p.memory, p.fgstp(), w4);
    const auto rs = stp.run(insts);
    report("fg-stp", static_cast<double>(rb.cycles) / rs.cycles,
           energyOf(stp, rs, 1.0, true, false,
                    stp.fgstpStats().valueTransfers),
           eb.edp);

    std::printf("\nEDP below 1.0 means the speedup more than pays for "
                "the extra energy.\n");
    return 0;
}
